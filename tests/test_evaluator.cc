#include "core/evaluator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/testing_fairness.h"

namespace omnifair {
namespace {

using testing_fairness::AlternatingPredictions;
using testing_fairness::MakeBiasedDataset;

std::vector<ConstraintSpec> SpConstraint(const Dataset& d, double epsilon = 0.03) {
  const FairnessSpec spec = MakeSpec(GroupByAttribute("grp"), "sp", epsilon);
  auto result = InduceConstraints(spec, d);
  EXPECT_TRUE(result.ok());
  return *result;
}

TEST(EvaluatorTest, FairnessPartIsSignedDifference) {
  const Dataset d = MakeBiasedDataset(400, 0.6, 0.3, 1);
  const ConstraintEvaluator evaluator(SpConstraint(d), d);
  ASSERT_EQ(evaluator.NumConstraints(), 1u);

  // Predict 1 exactly for group "a": SP(a)=1, SP(b)=0 -> FP = +1.
  std::vector<int> predictions(d.NumRows(), 0);
  for (size_t i : evaluator.Group1(0)) predictions[i] = 1;
  EXPECT_NEAR(evaluator.FairnessPart(0, predictions), 1.0, 1e-12);

  // All-zero predictions -> FP = 0.
  std::fill(predictions.begin(), predictions.end(), 0);
  EXPECT_NEAR(evaluator.FairnessPart(0, predictions), 0.0, 1e-12);
}

TEST(EvaluatorTest, SatisfiedAndMaxViolation) {
  const Dataset d = MakeBiasedDataset(400, 0.6, 0.3, 2);
  const ConstraintEvaluator evaluator(SpConstraint(d, 0.5), d);
  std::vector<int> predictions(d.NumRows(), 0);
  for (size_t i : evaluator.Group1(0)) predictions[i] = 1;  // FP = 1 > 0.5
  EXPECT_FALSE(evaluator.Satisfied(predictions));
  EXPECT_NEAR(evaluator.MaxViolation(predictions), 0.5, 1e-12);

  std::fill(predictions.begin(), predictions.end(), 1);  // FP = 0
  EXPECT_TRUE(evaluator.Satisfied(predictions));
  EXPECT_LE(evaluator.MaxViolation(predictions), 0.0);
}

TEST(EvaluatorTest, MostViolatedPicksArgmax) {
  const Dataset d = MakeBiasedDataset(600, 0.7, 0.2, 3);
  // Two specs: SP (heavily violated by group-dependent predictions) and MR
  // with a huge epsilon (never violated).
  std::vector<ConstraintSpec> constraints = SpConstraint(d, 0.01);
  const FairnessSpec mr_spec = MakeSpec(GroupByAttribute("grp"), "mr", 5.0);
  auto mr = InduceConstraints(mr_spec, d);
  ASSERT_TRUE(mr.ok());
  constraints.push_back((*mr)[0]);

  const ConstraintEvaluator evaluator(constraints, d);
  std::vector<int> predictions(d.NumRows(), 0);
  for (size_t i : evaluator.Group1(0)) predictions[i] = 1;
  EXPECT_EQ(evaluator.MostViolated(predictions), 0u);
}

TEST(EvaluatorTest, FairnessPartsVector) {
  const Dataset d = MakeBiasedDataset(300, 0.6, 0.3, 4);
  std::vector<ConstraintSpec> constraints = SpConstraint(d);
  const FairnessSpec fnr_spec = MakeSpec(GroupByAttribute("grp"), "fnr", 0.05);
  auto fnr = InduceConstraints(fnr_spec, d);
  ASSERT_TRUE(fnr.ok());
  constraints.push_back((*fnr)[0]);

  const ConstraintEvaluator evaluator(constraints, d);
  const std::vector<int> predictions = AlternatingPredictions(d.NumRows());
  const std::vector<double> parts = evaluator.FairnessParts(predictions);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_NEAR(parts[0], evaluator.FairnessPart(0, predictions), 1e-15);
  EXPECT_NEAR(parts[1], evaluator.FairnessPart(1, predictions), 1e-15);
}

TEST(EvaluatorTest, EmptyGroupOnSplitEvaluatesToZero) {
  // Constraint names come from a reference dataset; this split has no "b".
  const Dataset reference = MakeBiasedDataset(200, 0.6, 0.3, 5);
  const std::vector<ConstraintSpec> constraints = SpConstraint(reference);

  Dataset no_b;
  Column g = Column::Categorical("grp", {"a", "b"});
  Column x = Column::Numeric("score");
  Column x2 = Column::Numeric("noise");
  for (int i = 0; i < 10; ++i) {
    g.AppendCode(0);
    x.AppendNumeric(i);
    x2.AppendNumeric(0.0);
  }
  no_b.AddColumn(std::move(g));
  no_b.AddColumn(std::move(x));
  no_b.AddColumn(std::move(x2));
  no_b.SetLabels(std::vector<int>(10, 1));

  const ConstraintEvaluator evaluator(constraints, no_b);
  EXPECT_TRUE(evaluator.HasEmptyGroup(0));
  EXPECT_DOUBLE_EQ(evaluator.FairnessPart(0, std::vector<int>(10, 1)), 0.0);
}

TEST(EvaluatorTest, GroupMembersMatchGrouping) {
  const Dataset d = MakeBiasedDataset(100, 0.6, 0.3, 6);
  const ConstraintEvaluator evaluator(SpConstraint(d), d);
  const GroupMap groups = GroupByAttribute("grp")(d);
  EXPECT_EQ(evaluator.Group1(0), groups.at("a"));
  EXPECT_EQ(evaluator.Group2(0), groups.at("b"));
}

}  // namespace
}  // namespace omnifair
