#ifndef OMNIFAIR_UTIL_FAULT_INJECTOR_H_
#define OMNIFAIR_UTIL_FAULT_INJECTOR_H_

#include <string>

namespace omnifair {

/// Well-known fault-injection sites compiled into the library. Each site is a
/// named probe on a recovery path; arming it forces the exact failure that
/// path guards against, so every guard is deterministically unit-testable.
namespace fault_sites {
/// Forces a divergence (non-finite loss) in LogisticRegressionTrainer::Fit.
inline constexpr char kLrDescend[] = "lr.descend";
/// Forces a divergence (non-finite epoch loss) in MlpTrainer::Fit.
inline constexpr char kMlpEpoch[] = "mlp.epoch";
/// Forces a diverged boosting round in GbdtTrainer::Fit.
inline constexpr char kGbdtRound[] = "gbdt.round";
/// Corrupts one FP_j evaluation in ConstraintEvaluator::FairnessPart to NaN.
inline constexpr char kFairnessPart[] = "evaluator.fairness_part";
/// Forces one short write(2) reported as EINTR in WriteSnapshotFile
/// (transient; exercises RetryIo).
inline constexpr char kIoShortWrite[] = "io.short_write";
/// Forces ENOSPC in WriteSnapshotFile (permanent; retries must give up).
inline constexpr char kIoEnospc[] = "io.enospc";
/// Flips one payload byte after ReadSnapshotFile reads a file (exercises the
/// CRC32 guard).
inline constexpr char kIoCorruptRead[] = "io.corrupt_read";
/// Truncates one pread(2) in PreadFull to half the requested bytes; the
/// surrounding loop must absorb it (exercises the chunked-dataset readers).
inline constexpr char kIoShortRead[] = "io.short_read";
/// Simulates a crash immediately after a checkpoint write completes: the
/// tuner observes an interrupt and stops, leaving a durable snapshot behind.
inline constexpr char kCheckpointCrashAfterWrite[] =
    "checkpoint.crash_after_write";
}  // namespace fault_sites

/// Deterministic, process-global fault injector. Disarmed by default (the
/// fast path is one relaxed atomic load); tests Arm a site to make it fire on
/// its Nth call. The virtual clock skew lets TrainBudget deadline handling be
/// exercised without sleeping. All functions are thread-safe.
class FaultInjector {
 public:
  /// Arms `site` to fire on its `fire_at`-th call (1-based) and, when
  /// `repeat` is set, on every later call too.
  static void Arm(const std::string& site, int fire_at = 1, bool repeat = false);
  static void Disarm(const std::string& site);
  /// Disarms every site and zeroes call counts and the clock skew.
  static void Reset();

  /// True when `site` fires on this call; always false while disarmed.
  static bool ShouldFail(const std::string& site);
  /// Returns NaN when `site` fires on this call, `value` otherwise.
  static double CorruptDouble(const std::string& site, double value);

  /// Advances the virtual clock consulted by TrainBudget deadlines.
  static void AdvanceClock(double seconds);
  static double ClockSkewSeconds();

  /// Calls observed at `site` since Arm (armed sites only; 0 otherwise).
  static long long CallCount(const std::string& site);
};

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_FAULT_INJECTOR_H_
