#ifndef OMNIFAIR_DATA_SYNTHETIC_STREAM_H_
#define OMNIFAIR_DATA_SYNTHETIC_STREAM_H_

#include <cstdint>
#include <string>

#include "data/encoder.h"
#include "data/synthetic_common.h"
#include "util/status.h"

namespace omnifair {
namespace synthetic {

/// Options for out-of-core synthetic generation.
struct StreamGenerateOptions {
  /// Number of rows; 0 means the schema's default size.
  size_t num_rows = 0;
  uint64_t seed = 42;
  /// Rows per encoded block. Determinism contract: output depends on
  /// (seed, block_rows) — the same pair always produces the same file.
  size_t block_rows = 65536;
  /// Encoder settings; float32_features is forced on (chunked-format contract).
  EncoderOptions encoder;
};

/// What the generation produced.
struct StreamGenerateStats {
  uint64_t rows = 0;
  uint64_t blocks = 0;
  uint64_t num_features = 0;
};

/// Samples `num_rows` rows from `schema` directly into a chunked dataset at
/// `out_path` (data/chunked_dataset.h), one block at a time — 10M+ rows never
/// exist in RAM at once. The feature encoder is fitted on the first block and
/// applied to all blocks; block b is sampled with an Rng seeded from a
/// per-block stream of the base seed.
Result<StreamGenerateStats> GenerateSyntheticStream(
    const Schema& schema, const std::string& out_path,
    const StreamGenerateOptions& options);

}  // namespace synthetic
}  // namespace omnifair

#endif  // OMNIFAIR_DATA_SYNTHETIC_STREAM_H_
