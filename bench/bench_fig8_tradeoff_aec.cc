// Reproduces Figure 8 (+ the AEC halves of Figures 12/13): the customized
// Average Error Cost metric of Example 4 / Appendix A, with asymmetric
// costs C_fp and C_fn, varying epsilon. No baseline supports customized
// metrics — the series demonstrates that a user-declared metric plugs into
// the same tuning machinery with no algorithm changes.

#include <cmath>

#include "bench/bench_common.h"

namespace omnifair {
namespace bench {
namespace {

void RunDataset(BenchReporter& reporter, const std::string& dataset,
                double cost_fp, double cost_fn) {
  const int seeds = EnvSeeds(2);
  std::printf("\n--- %s (C_fp=%.1f, C_fn=%.1f) ---\n", dataset.c_str(), cost_fp,
              cost_fn);
  std::printf("%-10s %12s %12s %10s\n", "eps", "AEC bias", "accuracy", "feasible");

  // Unconstrained reference.
  {
    Aggregate agg;
    for (int s = 0; s < seeds; ++s) {
      const Dataset data = MakeBenchDataset(dataset, 2100 + s);
      const TrainValTestSplit split = SplitDefault(data, 2200 + s);
      FairnessSpec spec;
      spec.grouping = MainGroups(dataset);
      spec.metric = std::make_shared<AverageErrorCostMetric>(cost_fp, cost_fn);
      spec.epsilon = 10.0;
      const MethodResult result = RunMethod("omnifair", split, "lr", spec, s);
      if (result.supported) agg.Add(result);
    }
    std::printf("%-10s %12.3f %11.1f%% %10s\n", "baseline", agg.MeanDisparity(),
                100.0 * agg.MeanAccuracy(), "-");
    reporter.AddAggregate("tradeoff_aec", agg)
        .Label("dataset", dataset)
        .Label("row", "baseline");
  }

  for (double epsilon : {0.02, 0.05, 0.10, 0.15}) {
    Aggregate agg;
    int feasible = 0;
    for (int s = 0; s < seeds; ++s) {
      const Dataset data = MakeBenchDataset(dataset, 2100 + s);
      const TrainValTestSplit split = SplitDefault(data, 2200 + s);
      FairnessSpec spec;
      spec.grouping = MainGroups(dataset);
      spec.metric = std::make_shared<AverageErrorCostMetric>(cost_fp, cost_fn);
      spec.epsilon = epsilon;
      const MethodResult result = RunMethod("omnifair", split, "lr", spec, s);
      if (result.supported && result.satisfied) {
        agg.Add(result);
        ++feasible;
      }
    }
    if (agg.runs == 0) {
      std::printf("%-10.2f %12s %12s %7d/%d\n", epsilon, "N/A", "N/A", feasible,
                  seeds);
    } else {
      std::printf("%-10.2f %12.3f %11.1f%% %7d/%d\n", epsilon, agg.MeanDisparity(),
                  100.0 * agg.MeanAccuracy(), feasible, seeds);
    }
    reporter.AddAggregate("tradeoff_aec", agg)
        .Label("dataset", dataset)
        .Label("row", "constrained")
        .Value("epsilon", epsilon)
        .Value("feasible", feasible);
  }
}

void Run(BenchReporter& reporter) {
  PrintHeader("Figure 8 (+12/13): customized AEC metric trade-off (LR)");
  reporter.Config("seeds", EnvSeeds(2));
  reporter.Config("metric", "aec");
  reporter.Config("cost_fp", 1.0);
  reporter.Config("cost_fn", 3.0);
  // The COMPAS motivation: a false negative (missed re-offender) costs more
  // than a false positive in one reading; the reverse in another. Use the
  // paper's example asymmetry.
  RunDataset(reporter, "adult", 1.0, 3.0);
  RunDataset(reporter, "compas", 1.0, 3.0);
  RunDataset(reporter, "lsac", 1.0, 3.0);
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "fig8_tradeoff_aec",
      "Figure 8 (+12/13): customized AEC metric trade-off (LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
