#include "baselines/calmon.h"

#include <cmath>

#include "core/problem.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace omnifair {
namespace {

/// Repairs labels of `train` in place: each group's positive rate moves
/// degree-fraction of the way to `target_rate` by flipping a deterministic
/// pseudo-random subset of labels within the group.
Dataset RepairLabels(const Dataset& train, const GroupMap& groups, double target_rate,
                     double degree, uint64_t seed) {
  Dataset repaired = train;
  Rng rng(seed);
  for (const auto& [name, members] : groups) {
    if (members.empty()) continue;
    size_t positives = 0;
    for (size_t i : members) positives += (train.Label(i) == 1);
    const double rate =
        static_cast<double>(positives) / static_cast<double>(members.size());
    const double desired = rate + degree * (target_rate - rate);
    if (desired < rate) {
      // Flip some positives to negative with probability p.
      const double p = rate > 0.0 ? (rate - desired) / rate : 0.0;
      for (size_t i : members) {
        if (train.Label(i) == 1 && rng.NextBernoulli(p)) repaired.SetLabel(i, 0);
      }
    } else if (desired > rate) {
      const double p = rate < 1.0 ? (desired - rate) / (1.0 - rate) : 0.0;
      for (size_t i : members) {
        if (train.Label(i) == 0 && rng.NextBernoulli(p)) repaired.SetLabel(i, 1);
      }
    }
  }
  return repaired;
}

}  // namespace

bool CalmonPreprocessing::SupportsMetric(const FairnessMetric& metric) const {
  return metric.Name() == "sp";
}

Result<BaselineResult> CalmonPreprocessing::Train(const Dataset& train,
                                                  const Dataset& val, Trainer* trainer,
                                                  const FairnessSpec& spec) {
  if (!SupportsMetric(*spec.metric)) {
    return Status::Unsupported("Calmon preprocessing only supports statistical parity");
  }
  Stopwatch stopwatch;

  // Dataset-specific distortion parameters exist only for adult and compas
  // (paper §E.1): elsewhere the method cannot produce a valid repair.
  const bool has_parameters = train.name() == "adult" || train.name() == "compas";

  BaselineResult result;
  double best_accuracy = -1.0;
  int models_trained = 0;
  const GroupMap groups = spec.grouping(train);
  const double target_rate = train.PositiveRate();

  const std::vector<double> degrees =
      has_parameters
          ? std::vector<double>{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.3, 1.1, 1.2, 1.35, 1.5}
          : std::vector<double>{};
  for (double degree : degrees) {
    const Dataset repaired = RepairLabels(train, groups, target_rate, degree, 97);
    Result<std::unique_ptr<FairnessProblem>> problem =
        FairnessProblem::Create(repaired, val, {spec}, trainer);
    if (!problem.ok()) return problem.status();
    std::unique_ptr<Classifier> model =
        (*problem)->FitWithLambdas({0.0}, /*weight_model=*/nullptr);
    ++models_trained;
    const std::vector<int> val_preds = (*problem)->PredictVal(*model);
    const bool satisfied = (*problem)->val_evaluator().MaxViolation(val_preds) <= 1e-12;
    const double accuracy = (*problem)->ValAccuracy(val_preds);
    if (satisfied && accuracy > best_accuracy) {
      best_accuracy = accuracy;
      result.model = std::move(model);
      result.encoder = (*problem)->encoder();
      result.satisfied = true;
      result.val_accuracy = accuracy;
      result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
    } else if (result.model == nullptr) {
      result.model = std::move(model);
      result.encoder = (*problem)->encoder();
      result.val_accuracy = accuracy;
      result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
    }
  }

  if (result.model == nullptr) {
    // No distortion parameters for this dataset: train unconstrained so the
    // caller still gets a model, flagged unsatisfied (NA(1)).
    Result<std::unique_ptr<FairnessProblem>> problem =
        FairnessProblem::Create(train, val, {spec}, trainer);
    if (!problem.ok()) return problem.status();
    std::unique_ptr<Classifier> model = (*problem)->FitWithLambdas({0.0}, nullptr);
    ++models_trained;
    const std::vector<int> val_preds = (*problem)->PredictVal(*model);
    result.model = std::move(model);
    result.encoder = (*problem)->encoder();
    result.val_accuracy = (*problem)->ValAccuracy(val_preds);
    result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
    result.satisfied = false;
  }
  result.models_trained = models_trained;
  result.train_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace omnifair
