#ifndef OMNIFAIR_DATA_ENCODER_H_
#define OMNIFAIR_DATA_ENCODER_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace omnifair {

/// Options for feature encoding.
struct EncoderOptions {
  /// Standardize numeric columns to zero mean / unit variance using the
  /// statistics of the dataset the encoder was fit on (the training split).
  bool standardize_numeric = true;
  /// One-hot encode categorical columns (dropping nothing; trees don't care
  /// and linear models carry an explicit intercept elsewhere).
  bool one_hot_categorical = true;
  /// Columns excluded from the feature matrix (e.g. the sensitive attribute
  /// when training "fairness through unawareness"-style, or id columns).
  std::vector<std::string> drop_columns;
  /// Store encoded features as float32 instead of double. Halves the feature
  /// matrix footprint and memory bandwidth; model parameters, gradients and
  /// accumulators stay double (see Matrix's storage contract). A runtime
  /// storage choice — not part of the serialized encoder layout.
  bool float32_features = false;
};

/// Encodes a Dataset's attribute columns into a numeric feature Matrix.
///
/// Fit on the training split, then applied to validation/test splits so the
/// standardization statistics and one-hot layout come from training data
/// only — the standard leakage-free protocol the paper's experiments follow.
class FeatureEncoder {
 public:
  FeatureEncoder() = default;

  /// Learns column statistics/layout from the given dataset.
  void Fit(const Dataset& dataset, const EncoderOptions& options = {});

  /// Encodes a dataset with the fitted layout. Columns must match the fitted
  /// schema by name; categorical codes outside the fitted dictionary map to
  /// all-zero one-hot blocks.
  Matrix Transform(const Dataset& dataset) const;

  /// Fit + Transform in one step.
  Matrix FitTransform(const Dataset& dataset, const EncoderOptions& options = {});

  /// Number of output feature dimensions after encoding.
  size_t NumFeatures() const { return feature_names_.size(); }

  /// Human-readable names of output features ("age", "race=Hispanic", ...).
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  /// Writes the fitted layout + statistics in the library's text format
  /// (used by SaveFairModel so a saved model can encode raw data later).
  void SerializeTo(std::ostream& os) const;
  /// Reads a layout written by SerializeTo.
  static Result<FeatureEncoder> Deserialize(std::istream& is);

  /// One fitted column's encode step, in feature-layout order.
  struct ColumnPlan {
    std::string name;
    ColumnType type = ColumnType::kNumeric;
    double mean = 0.0;
    double stddev = 1.0;
    size_t num_categories = 0;  // one-hot width for categorical columns
  };

  /// The fitted per-column plans. Streaming ingest (data/stream_reader.h)
  /// uses these to encode raw cells straight into the fitted feature layout
  /// without building an intermediate Dataset per block.
  const std::vector<ColumnPlan>& plans() const { return plans_; }

 private:
  EncoderOptions options_;
  std::vector<ColumnPlan> plans_;
  std::vector<std::string> feature_names_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_ENCODER_H_
