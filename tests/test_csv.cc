#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace omnifair {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(CsvTest, ReadBasic) {
  const std::string path = TempPath("basic.csv");
  WriteFile(path,
            "age,race,label\n"
            "25,black,1\n"
            "40,white,0\n");
  CsvReadOptions options;
  Result<Dataset> result = ReadCsv(path, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->NumColumns(), 2u);
  EXPECT_EQ(result->ColumnByName("age").type(), ColumnType::kNumeric);
  EXPECT_EQ(result->ColumnByName("race").type(), ColumnType::kCategorical);
  EXPECT_EQ(result->Label(0), 1);
  EXPECT_EQ(result->Label(1), 0);
}

TEST(CsvTest, PositiveLabelValue) {
  const std::string path = TempPath("poslabel.csv");
  WriteFile(path,
            "x,income\n"
            "1,>50K\n"
            "2,<=50K\n");
  CsvReadOptions options;
  options.label_column = "income";
  options.positive_label_value = ">50K";
  Result<Dataset> result = ReadCsv(path, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Label(0), 1);
  EXPECT_EQ(result->Label(1), 0);
}

TEST(CsvTest, ForceCategorical) {
  const std::string path = TempPath("force.csv");
  WriteFile(path,
            "zip,label\n"
            "10001,0\n"
            "90210,1\n");
  CsvReadOptions options;
  options.force_categorical = {"zip"};
  Result<Dataset> result = ReadCsv(path, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ColumnByName("zip").type(), ColumnType::kCategorical);
}

TEST(CsvTest, MissingLabelColumn) {
  const std::string path = TempPath("nolabel.csv");
  WriteFile(path, "a,b\n1,2\n");
  Result<Dataset> result = ReadCsv(path, CsvReadOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RaggedRowFails) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "a,label\n1,0\n1,2,3\n");
  Result<Dataset> result = ReadCsv(path, CsvReadOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(CsvTest, NonBinaryLabelFails) {
  const std::string path = TempPath("badlabel.csv");
  WriteFile(path, "a,label\n1,5\n");
  Result<Dataset> result = ReadCsv(path, CsvReadOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(CsvTest, MissingFileFails) {
  Result<Dataset> result = ReadCsv("/nonexistent/file.csv", CsvReadOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  WriteFile(path, "a,label\n1,0\n\n2,1\n");
  Result<Dataset> result = ReadCsv(path, CsvReadOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRows(), 2u);
}

TEST(CsvTest, QuotedFieldsWithNewlinesAndCommas) {
  const std::string path = TempPath("quoted.csv");
  WriteFile(path,
            "note,label\n"
            "\"line\nbreak\",1\n"
            "\"with,comma\",0\n"
            "\"escaped \"\" quote\",1\n");
  Result<Dataset> result = ReadCsv(path, CsvReadOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->NumRows(), 3u);
  EXPECT_EQ(result->ColumnByName("note").CategoryOf(0), "line\nbreak");
  EXPECT_EQ(result->ColumnByName("note").CategoryOf(1), "with,comma");
  EXPECT_EQ(result->ColumnByName("note").CategoryOf(2), "escaped \" quote");
}

TEST(CsvTest, CrlfLineEndings) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "a,label\r\n1.5,0\r\n2.5,1\r\n");
  Result<Dataset> result = ReadCsv(path, CsvReadOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->ColumnByName("a").type(), ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(result->ColumnByName("a").NumericValue(1), 2.5);
}

TEST(CsvTest, FinalRowWithoutTrailingNewline) {
  const std::string path = TempPath("notrail.csv");
  WriteFile(path, "a,label\n1,0\n2,1");
  Result<Dataset> result = ReadCsv(path, CsvReadOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->Label(1), 1);
}

TEST(CsvTest, ErrorsNameByteOffsetOfBadRow) {
  const std::string path = TempPath("offset.csv");
  const std::string content =
      "age,label\n"
      "25,1\n"
      "bad,row,0\n";
  WriteFile(path, content);
  CsvReadOptions options;
  Result<Dataset> result = ReadCsv(path, options);
  ASSERT_FALSE(result.ok());
  const size_t expected_offset = content.find("bad,row");
  EXPECT_NE(result.status().message().find(
                "(byte " + std::to_string(expected_offset) + ")"),
            std::string::npos)
      << result.status().message();
}

TEST(CsvTest, ForceNumericErrorIsSeekable) {
  const std::string path = TempPath("forcenum.csv");
  const std::string content =
      "age,label\n"
      "25,1\n"
      "n/a,0\n";
  WriteFile(path, content);
  CsvReadOptions options;
  options.force_numeric = {"age"};
  Result<Dataset> result = ReadCsv(path, options);
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().message();
  const size_t expected_offset = content.find("n/a");
  EXPECT_NE(message.find("(byte " + std::to_string(expected_offset) + ")"),
            std::string::npos)
      << message;
}

TEST(CsvTest, WriteReadRoundTrip) {
  Dataset d("rt");
  Column age = Column::Numeric("age");
  Column g = Column::Categorical("g", {"a", "b"});
  age.AppendNumeric(20.5);
  age.AppendNumeric(31.0);
  g.AppendCode(0);
  g.AppendCode(1);
  d.AddColumn(std::move(age));
  d.AddColumn(std::move(g));
  d.SetLabels({1, 0});
  d.set_label_name("y");

  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(d, path).ok());

  CsvReadOptions options;
  options.label_column = "y";
  Result<Dataset> back = ReadCsv(path, options);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->NumRows(), 2u);
  EXPECT_DOUBLE_EQ(back->ColumnByName("age").NumericValue(0), 20.5);
  EXPECT_EQ(back->ColumnByName("g").CategoryOf(1), "b");
  EXPECT_EQ(back->Label(0), 1);
}

}  // namespace
}  // namespace omnifair
