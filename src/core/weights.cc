#include "core/weights.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {

WeightComputer::WeightComputer(std::vector<ConstraintSpec> constraints,
                               const Dataset& train)
    : evaluator_(std::move(constraints), train) {}

bool WeightComputer::DependsOnPredictions() const {
  for (size_t j = 0; j < evaluator_.NumConstraints(); ++j) {
    if (evaluator_.constraint(j).metric->DependsOnPredictions()) return true;
  }
  return false;
}

std::vector<double> WeightComputer::Compute(const std::vector<double>& lambdas,
                                            const std::vector<int>* predictions) const {
  OF_CHECK_EQ(lambdas.size(), evaluator_.NumConstraints());
  OF_COUNTER_INC("weights.computations");
  OF_TRACE_SPAN("compute_weights");
  OF_SCOPED_LATENCY_US("weights.compute_us");
  const Dataset& train = evaluator_.dataset();
  const double n = static_cast<double>(train.NumRows());
  std::vector<double> weights(train.NumRows(), 1.0);

  bool all_zero = true;
  for (double lambda : lambdas) all_zero &= (lambda == 0.0);
  if (all_zero) return weights;  // w_i(0) = 1 regardless of predictions

  for (size_t j = 0; j < lambdas.size(); ++j) {
    const double lambda = lambdas[j];
    if (lambda == 0.0 || evaluator_.HasEmptyGroup(j)) continue;
    const ConstraintSpec& constraint = evaluator_.constraint(j);
    if (constraint.metric->DependsOnPredictions()) {
      OF_CHECK(predictions != nullptr)
          << "metric " << constraint.metric->Name()
          << " needs predictions to derive weights (linear-search path)";
    }
    const std::vector<size_t>& group1 = evaluator_.Group1(j);
    const std::vector<size_t>& group2 = evaluator_.Group2(j);
    const MetricCoefficients coef1 =
        constraint.metric->Coefficients(train, group1, predictions);
    const MetricCoefficients coef2 =
        constraint.metric->Coefficients(train, group2, predictions);
    // w_i += N * lambda * c_i^{g1}  for i in g1,
    // w_i -= N * lambda * c_i^{g2}  for i in g2 (overlap adds both).
    for (size_t k = 0; k < group1.size(); ++k) {
      weights[group1[k]] += n * lambda * coef1.c[k];
    }
    for (size_t k = 0; k < group2.size(); ++k) {
      weights[group2[k]] -= n * lambda * coef2.c[k];
    }
  }

  for (double& w : weights) w = std::max(w, 0.0);
  return weights;
}

std::vector<double> WeightComputer::Compute(double lambda,
                                            const std::vector<int>* predictions) const {
  return Compute(std::vector<double>{lambda}, predictions);
}

}  // namespace omnifair
