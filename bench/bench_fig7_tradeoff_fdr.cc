// Reproduces Figure 7 (+ the FDR halves of Figures 12/13): the
// accuracy-fairness trade-off under an FDR (predictive parity) constraint
// with LR, varying epsilon, OmniFair vs Celis (the only baseline that
// supports FDR). Expected shape: OmniFair reduces the FDR disparity with
// little accuracy drop and dominates Celis, whose dense-grid approximation
// loses more accuracy at tight epsilon and misses tight bands entirely.

#include "bench/bench_common.h"

namespace omnifair {
namespace bench {
namespace {

void RunDataset(BenchReporter& reporter, const std::string& dataset) {
  const int seeds = EnvSeeds(2);
  const std::vector<double> epsilons = {0.01, 0.02, 0.03, 0.05, 0.08};
  std::printf("\n--- %s --- (cells: test FDR disparity -> test accuracy)\n",
              dataset.c_str());
  std::printf("%-8s %24s %24s\n", "eps", "omnifair", "celis");

  for (double epsilon : epsilons) {
    std::printf("%-8.2f", epsilon);
    for (const std::string& method : {"omnifair", "celis"}) {
      Aggregate agg;
      for (int s = 0; s < seeds; ++s) {
        const Dataset data = MakeBenchDataset(dataset, 1900 + s);
        const TrainValTestSplit split = SplitDefault(data, 2000 + s);
        const FairnessSpec spec = MakeSpec(MainGroups(dataset), "fdr", epsilon);
        const MethodResult result = RunMethod(method, split, "lr", spec, s);
        if (result.supported && result.satisfied) agg.Add(result);
      }
      if (agg.runs == 0) {
        std::printf(" %24s", "-");
      } else {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.3f -> %.1f%%", agg.MeanDisparity(),
                      100.0 * agg.MeanAccuracy());
        std::printf(" %24s", cell);
      }
      reporter.AddAggregate("tradeoff", agg)
          .Label("dataset", dataset)
          .Label("method", method)
          .Value("epsilon", epsilon);
    }
    std::printf("\n");
  }
}

void Run(BenchReporter& reporter) {
  reporter.Config("seeds", EnvSeeds(2));
  reporter.Config("metric", "fdr");
  PrintHeader("Figure 7 (+12/13): FDR accuracy-fairness trade-off (LR)");
  RunDataset(reporter, "adult");
  RunDataset(reporter, "compas");
  RunDataset(reporter, "lsac");
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "fig7_tradeoff_fdr",
      "Figure 7 (+12/13): FDR accuracy-fairness trade-off (LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
