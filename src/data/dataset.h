#ifndef OMNIFAIR_DATA_DATASET_H_
#define OMNIFAIR_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/column.h"
#include "util/status.h"

namespace omnifair {

/// A labeled tabular dataset D = {(x_i, y_i)} for binary classification.
///
/// Columns are the raw (pre-encoding) attributes, including sensitive
/// attributes such as race or sex; grouping functions read them directly.
/// Labels are binary {0, 1}. Feature encoding to a numeric Matrix is a
/// separate step (see FeatureEncoder) so that a grouping function can use
/// attributes that the model never sees.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumRows() const { return labels_.size(); }
  size_t NumColumns() const { return columns_.size(); }

  /// Adds a fully built column; its length must match existing columns.
  void AddColumn(Column column);

  /// Column access by index or name. HasColumn/FindColumn do not abort.
  const Column& ColumnAt(size_t index) const;
  Column* MutableColumnAt(size_t index);
  bool HasColumn(const std::string& name) const;
  /// Returns nullptr when absent.
  const Column* FindColumn(const std::string& name) const;
  /// Aborts when absent (programmer error).
  const Column& ColumnByName(const std::string& name) const;
  const std::vector<Column>& columns() const { return columns_; }

  // --- Labels ----------------------------------------------------------------
  const std::vector<int>& labels() const { return labels_; }
  int Label(size_t row) const { return labels_[row]; }
  void SetLabels(std::vector<int> labels);
  void SetLabel(size_t row, int label);
  const std::string& label_name() const { return label_name_; }
  void set_label_name(std::string name) { label_name_ = std::move(name); }

  /// Fraction of rows with label 1.
  double PositiveRate() const;

  /// New dataset holding the given subset of rows, in order. Category
  /// dictionaries are preserved so codes remain comparable across subsets.
  Dataset SelectRows(const std::vector<size_t>& indices) const;

  /// Validates internal consistency (equal column lengths, binary labels).
  Status Validate() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<int> labels_;
  std::string label_name_ = "label";
};

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_DATASET_H_
