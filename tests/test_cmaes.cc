#include "baselines/cmaes.h"

#include <cmath>

#include <gtest/gtest.h>

namespace omnifair {
namespace {

double Sphere(const std::vector<double>& x) {
  double value = 0.0;
  for (double xi : x) value += xi * xi;
  return value;
}

double Rosenbrock(const std::vector<double>& x) {
  double value = 0.0;
  for (size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    value += 100.0 * a * a + b * b;
  }
  return value;
}

TEST(CmaesTest, MinimizesSphere) {
  CmaesOptions options;
  options.max_iterations = 200;
  Cmaes cmaes(options);
  const CmaesResult result = cmaes.Minimize(Sphere, std::vector<double>(5, 2.0));
  EXPECT_LT(result.best_value, 1e-8);
  for (double x : result.best_x) EXPECT_NEAR(x, 0.0, 1e-3);
}

TEST(CmaesTest, MinimizesShiftedSphere) {
  CmaesOptions options;
  options.max_iterations = 250;
  Cmaes cmaes(options);
  auto objective = [](const std::vector<double>& x) {
    double value = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double diff = x[i] - (1.0 + static_cast<double>(i));
      value += diff * diff;
    }
    return value;
  };
  const CmaesResult result = cmaes.Minimize(objective, std::vector<double>(3, 0.0));
  EXPECT_LT(result.best_value, 1e-6);
  EXPECT_NEAR(result.best_x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.best_x[2], 3.0, 1e-2);
}

TEST(CmaesTest, HandlesRosenbrockValley) {
  CmaesOptions options;
  options.max_iterations = 600;
  options.sigma = 0.3;
  Cmaes cmaes(options);
  const CmaesResult result = cmaes.Minimize(Rosenbrock, std::vector<double>(2, 0.0));
  // The optimum is at (1, 1) with value 0; CMA-ES gets close.
  EXPECT_LT(result.best_value, 1e-4);
}

TEST(CmaesTest, DeterministicGivenSeed) {
  CmaesOptions options;
  options.max_iterations = 50;
  options.seed = 7;
  Cmaes a(options);
  Cmaes b(options);
  const CmaesResult ra = a.Minimize(Sphere, std::vector<double>(4, 1.0));
  const CmaesResult rb = b.Minimize(Sphere, std::vector<double>(4, 1.0));
  EXPECT_EQ(ra.best_value, rb.best_value);
  EXPECT_EQ(ra.best_x, rb.best_x);
}

TEST(CmaesTest, ReportsEvaluationCounts) {
  CmaesOptions options;
  options.max_iterations = 10;
  options.population = 8;
  Cmaes cmaes(options);
  const CmaesResult result = cmaes.Minimize(Sphere, std::vector<double>(3, 1.0));
  EXPECT_EQ(result.iterations, 10);
  EXPECT_EQ(result.evaluations, 1 + 10 * 8);
}

TEST(CmaesTest, BestNeverWorseThanStart) {
  CmaesOptions options;
  options.max_iterations = 5;
  Cmaes cmaes(options);
  const std::vector<double> x0(6, 3.0);
  const CmaesResult result = cmaes.Minimize(Sphere, x0);
  EXPECT_LE(result.best_value, Sphere(x0));
}

}  // namespace
}  // namespace omnifair
