#ifndef OMNIFAIR_ML_DECISION_TREE_H_
#define OMNIFAIR_ML_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/random.h"

namespace omnifair {

/// Hyperparameters for the weighted CART classifier.
struct DecisionTreeOptions {
  int max_depth = 8;
  /// Do not split nodes whose total example weight is below this.
  double min_weight_split = 4.0;
  /// Minimum total example weight on each side of a split.
  double min_weight_leaf = 2.0;
  /// Number of features considered per node; 0 means all (plain CART),
  /// otherwise a random subset (used by RandomForestTrainer).
  size_t max_features = 0;
  uint64_t seed = 7;
};

/// A fitted CART tree stored as a flat node array.
class DecisionTreeModel : public Classifier {
 public:
  struct Node {
    bool is_leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    /// Weighted P(y=1) among training examples reaching this leaf.
    double probability = 0.5;
  };

  explicit DecisionTreeModel(std::vector<Node> nodes);

  std::vector<double> PredictProba(const Matrix& X) const override;
  /// Per-row traversal straight into the output buffer — no temporary.
  void AccumulateProba(const Matrix& X, size_t row_begin, size_t row_end,
                       std::vector<double>& proba) const override;
  std::string Name() const override { return "decision_tree"; }

  size_t NumNodes() const { return nodes_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Depth of the deepest leaf (root = 0).
  int Depth() const;

 private:
  double PredictRow(const double* row) const;

  std::vector<Node> nodes_;
};

/// Weighted CART with exact split search (per-node sort) on the weighted
/// Gini impurity. Trees optimize accuracy without an explicit loss function,
/// which is exactly why the paper needs a model-agnostic mechanism — the
/// only fairness hook available here is the example weights.
class DecisionTreeTrainer : public Trainer {
 public:
  explicit DecisionTreeTrainer(DecisionTreeOptions options = {});

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override;
  using Trainer::Fit;

  std::string Name() const override { return "decision_tree"; }
  std::unique_ptr<Trainer> Clone() const override {
    return std::make_unique<DecisionTreeTrainer>(options_);
  }

 private:
  DecisionTreeOptions options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_DECISION_TREE_H_
