#include "ml/gbdt.h"

#include <cmath>
#include <gtest/gtest.h>

#include "core/problem.h"
#include "data/datasets.h"
#include "ml/logistic_regression.h"
#include "tests/testing_data.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;
using testing_data::MakeXor;
using testing_data::TrainAccuracy;

std::vector<std::vector<GbdtTreeNode>> FitTrees(const Blobs& blobs,
                                                const GbdtOptions& options) {
  GbdtTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* gbdt = dynamic_cast<const GbdtModel*>(model.get());
  EXPECT_NE(gbdt, nullptr);
  return gbdt->trees();
}

void ExpectSameTrees(const std::vector<std::vector<GbdtTreeNode>>& a,
                     const std::vector<std::vector<GbdtTreeNode>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].size(), b[t].size()) << "tree " << t;
    for (size_t i = 0; i < a[t].size(); ++i) {
      EXPECT_EQ(a[t][i].is_leaf, b[t][i].is_leaf) << "tree " << t << " node " << i;
      EXPECT_EQ(a[t][i].feature, b[t][i].feature) << "tree " << t << " node " << i;
      EXPECT_EQ(a[t][i].threshold, b[t][i].threshold)
          << "tree " << t << " node " << i;
      EXPECT_EQ(a[t][i].left, b[t][i].left) << "tree " << t << " node " << i;
      EXPECT_EQ(a[t][i].right, b[t][i].right) << "tree " << t << " node " << i;
      EXPECT_EQ(a[t][i].value, b[t][i].value) << "tree " << t << " node " << i;
    }
  }
}

TEST(GbdtTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  GbdtTrainer trainer;
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.95);
}

TEST(GbdtTest, LearnsSeparableData) {
  const Blobs blobs = MakeBlobs(500, 2.0, 2);
  GbdtTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.97);
}

TEST(GbdtTest, MoreRoundsFitBetter) {
  const Blobs xor_data = MakeXor(500, 3);
  GbdtOptions few_options;
  few_options.num_rounds = 2;
  GbdtOptions many_options;
  many_options.num_rounds = 40;
  GbdtTrainer few(few_options);
  GbdtTrainer many(many_options);
  const double acc_few = TrainAccuracy(
      *few.Fit(xor_data.X, xor_data.y, xor_data.unit_weights), xor_data);
  const double acc_many = TrainAccuracy(
      *many.Fit(xor_data.X, xor_data.y, xor_data.unit_weights), xor_data);
  EXPECT_GE(acc_many, acc_few);
}

TEST(GbdtTest, NumTreesMatchesRounds) {
  const Blobs blobs = MakeBlobs(100, 1.0, 4);
  GbdtOptions options;
  options.num_rounds = 12;
  GbdtTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* gbdt = dynamic_cast<const GbdtModel*>(model.get());
  ASSERT_NE(gbdt, nullptr);
  EXPECT_EQ(gbdt->NumTrees(), 12u);
}

TEST(GbdtTest, Deterministic) {
  const Blobs blobs = MakeBlobs(300, 1.0, 5);
  GbdtTrainer a;
  GbdtTrainer b;
  EXPECT_EQ(a.Fit(blobs.X, blobs.y, blobs.unit_weights)->Predict(blobs.X),
            b.Fit(blobs.X, blobs.y, blobs.unit_weights)->Predict(blobs.X));
}

TEST(GbdtTest, RawScoreIsLogOdds) {
  const Blobs blobs = MakeBlobs(200, 2.0, 6);
  GbdtTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* gbdt = dynamic_cast<const GbdtModel*>(model.get());
  ASSERT_NE(gbdt, nullptr);
  const std::vector<double> raw = gbdt->PredictRaw(blobs.X);
  const std::vector<double> proba = gbdt->PredictProba(blobs.X);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(proba[i], 1.0 / (1.0 + std::exp(-raw[i])), 1e-12);
  }
}

TEST(GbdtTest, ZeroWeightExamplesIgnored) {
  Blobs blobs = MakeBlobs(400, 2.5, 7);
  Blobs corrupted = blobs;
  std::vector<double> weights(blobs.y.size(), 1.0);
  for (size_t i = 0; i < blobs.y.size(); i += 2) {
    corrupted.y[i] = 1 - corrupted.y[i];
    weights[i] = 0.0;
  }
  GbdtTrainer trainer;
  const auto model = trainer.Fit(corrupted.X, corrupted.y, weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.93);
}

TEST(GbdtHistogramTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  GbdtOptions options;
  options.split_method = SplitMethod::kHistogram;
  GbdtTrainer trainer(options);
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.95);
}

TEST(GbdtHistogramTest, ThreadCountDoesNotChangeEnsemble) {
  // Determinism contract (DESIGN.md §11): same seed => bit-identical trees
  // at 1 and N threads.
  const Blobs blobs = MakeBlobs(4000, 0.8, 10);
  GbdtOptions serial;
  serial.split_method = SplitMethod::kHistogram;
  serial.max_bins = 64;
  serial.num_rounds = 10;
  serial.num_threads = 1;
  GbdtOptions parallel = serial;
  parallel.num_threads = 4;
  ExpectSameTrees(FitTrees(blobs, serial), FitTrees(blobs, parallel));
}

TEST(GbdtHistogramTest, ParallelPredictMatchesSerial) {
  const Blobs blobs = MakeBlobs(3000, 1.0, 11);
  GbdtOptions options;
  options.num_rounds = 10;
  GbdtTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* serial = dynamic_cast<const GbdtModel*>(model.get());
  ASSERT_NE(serial, nullptr);
  // Same trees, prediction chunked over 4 workers: must match bit for bit.
  GbdtModel parallel(serial->trees(), serial->base_score(),
                     serial->learning_rate(), /*num_threads=*/4);
  EXPECT_EQ(serial->PredictProba(blobs.X), parallel.PredictProba(blobs.X));
  std::vector<double> acc_serial(blobs.X.rows(), 0.0);
  std::vector<double> acc_parallel(blobs.X.rows(), 0.0);
  serial->AccumulateProba(blobs.X, 0, blobs.X.rows(), acc_serial);
  parallel.AccumulateProba(blobs.X, 0, blobs.X.rows(), acc_parallel);
  EXPECT_EQ(acc_serial, acc_parallel);
}

TEST(GbdtHistogramTest, MatchesExactAccuracyOnSyntheticCompas) {
  SyntheticOptions data_options;
  data_options.num_rows = 3000;
  data_options.seed = 23;
  const Dataset data = MakeCompasDataset(data_options);
  LogisticRegressionTrainer encoder_helper;  // encoder via a FairnessProblem
  auto problem = FairnessProblem::Create(
      data, data,
      {MakeSpec(GroupByAttributeValues("race", {"African-American", "Caucasian"}),
                "sp", 0.05)},
      &encoder_helper);
  ASSERT_TRUE(problem.ok()) << problem.status();
  const Matrix& X = (*problem)->train_features();
  const std::vector<int>& y = (*problem)->train().labels();

  GbdtOptions exact;
  GbdtOptions hist = exact;
  hist.split_method = SplitMethod::kHistogram;
  GbdtTrainer exact_trainer(exact);
  GbdtTrainer hist_trainer(hist);
  const double exact_acc = Accuracy(y, exact_trainer.Fit(X, y)->Predict(X));
  const double hist_acc = Accuracy(y, hist_trainer.Fit(X, y)->Predict(X));
  EXPECT_NEAR(hist_acc, exact_acc, 0.02);
}

TEST(GbdtTest, UpweightingShiftsPositiveRate) {
  const Blobs blobs = MakeBlobs(400, 0.5, 8);
  GbdtTrainer trainer;
  const auto base = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  std::vector<double> boosted(blobs.y.size());
  for (size_t i = 0; i < blobs.y.size(); ++i) {
    boosted[i] = blobs.y[i] == 1 ? 6.0 : 1.0;
  }
  const auto heavy = trainer.Fit(blobs.X, blobs.y, boosted);
  double base_rate = 0.0;
  double heavy_rate = 0.0;
  for (int p : base->Predict(blobs.X)) base_rate += p;
  for (int p : heavy->Predict(blobs.X)) heavy_rate += p;
  EXPECT_GT(heavy_rate, base_rate);
}

}  // namespace
}  // namespace omnifair
