#include "core/grid_search.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <utility>

#include "core/run_profile.h"
#include "ml/serialization.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace omnifair {

namespace {

/// points_per_dim^k via checked integer multiplication. Returns false on
/// overflow (std::pow's double rounding silently truncates large grids).
bool GridSize(int points_per_dim, size_t k, long long* total) {
  *total = 1;
  for (size_t dim = 0; dim < k; ++dim) {
    if (__builtin_mul_overflow(*total, static_cast<long long>(points_per_dim),
                               total)) {
      return false;
    }
  }
  return true;
}

}  // namespace

GridSearchTuner::GridSearchTuner(GridSearchOptions options) : options_(options) {}

MultiTuneResult GridSearchTuner::Run(FairnessProblem& problem) const {
  return RunCollecting(problem, /*points=*/nullptr);
}

MultiTuneResult GridSearchTuner::RunCollecting(FairnessProblem& problem,
                                               std::vector<GridPoint>* points) const {
  const size_t k = problem.NumConstraints();
  OF_CHECK_GE(k, 1u);
  OF_CHECK_GE(options_.points_per_dim, 2);
  OF_TRACE_SPAN("grid_search");
  const int models_before = problem.models_trained();

  long long total = 0;
  if (!GridSize(options_.points_per_dim, k, &total)) {
    MultiTuneResult result;
    result.lambdas.assign(k, 0.0);
    result.status = Status::InvalidArgument(
        "grid size " + std::to_string(options_.points_per_dim) + "^" +
        std::to_string(k) + " overflows");
    return result;
  }

  // Trajectory annotation shared by the base fit and every grid point.
  auto annotate = [&problem](const std::vector<int>& preds) {
    if (!problem.RecordingTuneReport()) return;
    problem.AnnotateLastTunePoint(problem.ValAccuracy(preds),
                                  problem.val_evaluator().FairnessParts(preds));
  };

  // Crash-safe checkpointing: the base fit and every grid point replay from
  // the log on resume, then the run continues live.
  Result<std::unique_ptr<CheckpointManager>> checkpoint =
      AttachCheckpoint(problem, options_.checkpoint, "grid_search");
  if (!checkpoint.ok()) {
    MultiTuneResult result;
    result.lambdas.assign(k, 0.0);
    result.status = checkpoint.status();
    return result;
  }
  struct CheckpointGuard {
    FairnessProblem& problem;
    CheckpointManager* manager;
    ~CheckpointGuard() { FinishCheckpoint(problem, manager); }
  } checkpoint_guard{problem, checkpoint->get()};

  // The weight model for prediction-parameterized metrics: the
  // unconstrained fit.
  std::vector<double> lambdas(k, 0.0);
  problem.SetTuneStage("initial");
  std::unique_ptr<Classifier> base_model = problem.FitWithLambdas(lambdas, nullptr);

  MultiTuneResult result;
  result.lambdas.assign(k, 0.0);
  if (base_model == nullptr) {
    // Trainer failed behind the exception firewall before any model existed.
    result.status = problem.last_fit_status();
    result.models_trained = problem.models_trained() - models_before;
    return result;
  }
  if (problem.RecordingTuneReport()) annotate(problem.PredictVal(*base_model));

  const double lo = -options_.max_lambda;
  const double step =
      2.0 * options_.max_lambda / static_cast<double>(options_.points_per_dim - 1);
  auto decode = [&](long long index, std::vector<double>* out) {
    long long rest = index;
    for (size_t dim = 0; dim < k; ++dim) {
      (*out)[dim] =
          lo + step * static_cast<double>(rest % options_.points_per_dim);
      rest /= options_.points_per_dim;
    }
  };

  // Parallel fits need per-worker trainer clones; a trainer family without
  // Clone() support keeps the serial path.
  std::unique_ptr<Trainer> probe_clone;
  if (options_.num_threads > 1 && total > 1) {
    probe_clone = problem.trainer()->Clone();
  }

  problem.SetTuneStage("grid");
  if (probe_clone == nullptr) {
    // Serial path (num_threads == 1, or unclonable trainer): unchanged.
    double best_accuracy = -1.0;
    for (long long index = 0; index < total; ++index) {
      if (problem.Interrupted()) {
        result.status = problem.InterruptStatus();
        break;
      }
      OF_TRACE_SPAN("grid_point");
      OF_COUNTER_INC("tuner.grid_points");
      decode(index, &lambdas);
      std::unique_ptr<Classifier> model =
          problem.FitWithLambdas(lambdas, base_model.get());
      if (model == nullptr) {
        // Trainer failed mid-grid: keep the best point found so far.
        result.status = problem.last_fit_status();
        break;
      }
      const std::vector<int> val_preds = problem.PredictVal(*model);
      annotate(val_preds);
      const bool satisfied = problem.val_evaluator().MaxViolation(val_preds) <= 1e-12;
      const double accuracy = problem.ValAccuracy(val_preds);
      if (points != nullptr) {
        GridPoint point;
        point.lambdas = lambdas;
        point.val_accuracy = accuracy;
        point.val_fairness_parts = problem.val_evaluator().FairnessParts(val_preds);
        point.satisfied = satisfied;
        points->push_back(std::move(point));
      }
      if (satisfied && accuracy > best_accuracy) {
        best_accuracy = accuracy;
        result.model = std::move(model);
        result.lambdas = lambdas;
        result.satisfied = true;
        result.val_accuracy = accuracy;
        result.val_fairness_parts = problem.val_evaluator().FairnessParts(val_preds);
      }
    }
  } else {
    // Parallel path: every grid point fits on its own trainer clone; the
    // reduction keeps the min-index argmax among satisfied points (the same
    // point the serial strict `accuracy > best` keep-first scan selects) and
    // merges the trajectory in index order, so the outcome is bit-identical
    // to the serial path.
    struct SlotResult {
      bool attempted = false;  // a fit was issued (charged to the budget)
      bool replayed = false;   // outcome came from the checkpoint log
      bool fit_ok = false;
      double seconds = 0.0;
      Status status;
      double accuracy = 0.0;
      bool satisfied = false;
      std::vector<double> parts;
      std::vector<double> point_lambdas;
      std::vector<uint8_t> model_blob;  // live fits on checkpointing runs
    };
    std::vector<SlotResult> slots(static_cast<size_t>(total));
    std::atomic<bool> cancel{false};
    std::atomic<bool> expired{false};

    // One weight-model prediction pass instead of one per grid point.
    std::vector<int> weight_predictions;
    const std::vector<int>* weight_predictions_ptr = nullptr;
    if (problem.DependsOnPredictions()) {
      weight_predictions = problem.PredictTrain(*base_model);
      weight_predictions_ptr = &weight_predictions;
    }

    std::mutex best_mu;
    std::unique_ptr<Classifier> best_model;
    double best_accuracy = -1.0;
    long long best_index = total;
    // Same selection the serial strict `accuracy > best` keep-first scan
    // makes; callers on worker threads hold best_mu.
    auto consider_best = [&](std::unique_ptr<Classifier> model,
                             long long index, double accuracy) {
      if (accuracy > best_accuracy ||
          (accuracy == best_accuracy && index < best_index)) {
        best_accuracy = accuracy;
        best_index = index;
        best_model = std::move(model);
      }
    };

    // Without checkpointing the whole grid is a single ParallelFor. With it
    // the grid runs in index blocks so fit records land at deterministic
    // index-ordered barriers and the snapshot is always a prefix of the
    // serial fit order.
    CheckpointManager* cp = problem.checkpoint();
    const long long block_size =
        cp != nullptr ? std::max<long long>(16, 4LL * options_.num_threads)
                      : total;
    bool replay_broken = false;

    for (long long begin = 0; begin < total && !replay_broken;
         begin += block_size) {
      const long long end = std::min(total, begin + block_size);
      if (cancel.load(std::memory_order_relaxed)) break;
      if (problem.Interrupted()) {
        expired.store(true, std::memory_order_relaxed);
        break;
      }

      // Replay prologue: logged fits come back serially, in index order.
      long long live_begin = begin;
      while (cp != nullptr && cp->HasPendingReplay() && live_begin < end) {
        const long long index = live_begin;
        SlotResult& slot = slots[static_cast<size_t>(index)];
        slot.point_lambdas.resize(k);
        decode(index, &slot.point_lambdas);
        bool replay_failed = false;
        FairnessProblem::ParallelFitOutcome outcome =
            problem.ReplayFitOn(slot.point_lambdas, &replay_failed);
        if (replay_failed) {
          // Broken replay (diverged options / damaged blob): no fit
          // happened, so no TunePoint — stop with the typed cause.
          if (result.status.ok()) result.status = outcome.status;
          replay_broken = true;
          break;
        }
        ++live_begin;
        slot.attempted = true;
        slot.replayed = true;
        slot.seconds = outcome.seconds;
        if (outcome.model == nullptr) {
          slot.status = outcome.status;
          cancel.store(true, std::memory_order_relaxed);
          break;
        }
        slot.fit_ok = true;
        const std::vector<int> val_preds = problem.PredictVal(*outcome.model);
        slot.parts = problem.val_evaluator().FairnessParts(val_preds);
        slot.satisfied =
            problem.val_evaluator().MaxViolationFromParts(slot.parts) <= 1e-12;
        slot.accuracy = problem.ValAccuracy(val_preds);
        if (slot.satisfied) {
          consider_best(std::move(outcome.model), index, slot.accuracy);
        }
      }

      if (live_begin < end && !replay_broken &&
          !cancel.load(std::memory_order_relaxed)) {
        ThreadPool::Global().ParallelFor(
            static_cast<size_t>(end - live_begin),
            [&](size_t offset) {
              // A firewalled failure on any worker cancels the outstanding
              // grid tasks; the budget stops exploratory fits the same way
              // it stops the serial loop.
              if (cancel.load(std::memory_order_relaxed)) return;
              if (problem.BudgetExpired()) {
                expired.store(true, std::memory_order_relaxed);
                return;
              }
              OF_TRACE_SPAN("grid_point");
              OF_COUNTER_INC("tuner.grid_points");
              const size_t i = static_cast<size_t>(live_begin) + offset;
              SlotResult& slot = slots[i];
              slot.point_lambdas.resize(k);
              decode(static_cast<long long>(i), &slot.point_lambdas);
              std::unique_ptr<Trainer> clone = problem.trainer()->Clone();
              FairnessProblem::ParallelFitOutcome outcome =
                  problem.FitWithLambdasOn(*clone, slot.point_lambdas,
                                           weight_predictions_ptr);
              slot.attempted = true;
              slot.seconds = outcome.seconds;
              if (outcome.model == nullptr) {
                slot.status = outcome.status;
                cancel.store(true, std::memory_order_relaxed);
                return;
              }
              slot.fit_ok = true;
              if (cp != nullptr) {
                // Serialize off-thread, before best-selection can move the
                // model away; the barrier below logs the blob.
                RunStageTimer checkpoint_timer(problem.profiler(),
                                               RunStage::kCheckpoint);
                Result<std::vector<uint8_t>> serialized =
                    SerializeModelBinary(*outcome.model);
                if (serialized.ok()) slot.model_blob = std::move(*serialized);
              }
              const std::vector<int> val_preds =
                  problem.PredictVal(*outcome.model);
              slot.parts = problem.val_evaluator().FairnessParts(val_preds);
              slot.satisfied =
                  problem.val_evaluator().MaxViolationFromParts(slot.parts) <=
                  1e-12;
              slot.accuracy = problem.ValAccuracy(val_preds);
              if (!slot.satisfied) return;
              std::lock_guard<std::mutex> lock(best_mu);
              consider_best(std::move(outcome.model),
                            static_cast<long long>(i), slot.accuracy);
            },
            options_.num_threads);
      }

      // Block barrier: log the block's live fits in index order (only the
      // contiguous attempted prefix — a cancelled or expired block leaves
      // gaps, and the replay log must stay a prefix of the serial order) and
      // give the snapshot a chance to hit disk.
      if (cp != nullptr) {
        RunStageTimer checkpoint_timer(problem.profiler(),
                                       RunStage::kCheckpoint);
        for (long long index = live_begin; index < end; ++index) {
          SlotResult& slot = slots[static_cast<size_t>(index)];
          if (!slot.attempted) break;
          cp->RecordFitBlob(slot.point_lambdas, slot.fit_ok, slot.status,
                            slot.seconds, std::move(slot.model_blob));
        }
        cp->MaybeWrite();
      }
    }

    // Merge in index order: every issued fit gets its TunePoint (so the
    // report invariant points[i].models_trained == i + 1 matches the budget
    // accounting), evaluated points land in `points`, and the status is the
    // first failure by grid index.
    for (size_t i = 0; i < slots.size(); ++i) {
      SlotResult& slot = slots[i];
      if (!slot.attempted) continue;
      problem.AppendTunePoint(slot.point_lambdas, slot.fit_ok, slot.seconds);
      if (!slot.fit_ok) {
        if (result.status.ok()) result.status = slot.status;
        continue;
      }
      problem.AnnotateLastTunePoint(slot.accuracy, slot.parts);
      if (points != nullptr) {
        GridPoint point;
        point.lambdas = slot.point_lambdas;
        point.val_accuracy = slot.accuracy;
        point.val_fairness_parts = slot.parts;
        point.satisfied = slot.satisfied;
        points->push_back(std::move(point));
      }
    }
    if (result.status.ok() && expired.load(std::memory_order_relaxed)) {
      result.status = problem.InterruptStatus();
    }
    if (best_model != nullptr) {
      result.model = std::move(best_model);
      result.lambdas = slots[static_cast<size_t>(best_index)].point_lambdas;
      result.satisfied = true;
      result.val_accuracy = best_accuracy;
      result.val_fairness_parts = slots[static_cast<size_t>(best_index)].parts;
    }
  }

  if (result.model == nullptr) {
    // No satisfying grid point: return the unconstrained model, unsatisfied.
    const std::vector<int> val_preds = problem.PredictVal(*base_model);
    result.val_accuracy = problem.ValAccuracy(val_preds);
    result.val_fairness_parts = problem.val_evaluator().FairnessParts(val_preds);
    result.model = std::move(base_model);
    result.lambdas.assign(k, 0.0);
    result.satisfied = false;
  }
  result.models_trained = problem.models_trained() - models_before;
  return result;
}

}  // namespace omnifair
