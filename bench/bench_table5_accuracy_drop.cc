// Reproduces Table 5: accuracy drop (vs. the unconstrained model) when
// enforcing statistical parity with epsilon = 0.03, across four datasets,
// four model families and all methods. NA(1): no hyperparameter setting
// satisfies the constraint on validation; NA(2): model/constraint not
// supported by the method.
//
// Expectation vs. paper: OmniFair shows the smallest (or near-smallest)
// accuracy drop in most cells; Zafar/Celis are LR-only; Calmon fails on
// LSAC/Bank; CMA-ES (Thomas) is its own column.

#include "bench/bench_common.h"

namespace omnifair {
namespace bench {
namespace {

constexpr double kEpsilon = 0.03;

std::string Cell(const Aggregate& method, const Aggregate& unconstrained) {
  if (method.runs == 0) return "NA(2)";
  if (!method.AnySatisfied()) return "NA(1)";
  const double drop =
      method.SatisfiedAccuracy() - unconstrained.MeanAccuracy();
  return FormatPercent(drop);
}

void Run(BenchReporter& reporter) {
  const std::vector<std::string> datasets = {"compas", "adult", "lsac", "bank"};
  const std::vector<std::string> models = PaperModelNames();  // lr rf xgb nn
  const std::vector<std::string> methods = {"omnifair", "kamiran", "calmon",
                                            "zafar",    "celis",   "agarwal"};
  const int seeds = EnvSeeds(2);
  reporter.Config("seeds", seeds);
  reporter.Config("metric", "sp");
  reporter.Config("epsilon", kEpsilon);

  PrintHeader("Table 5: accuracy drop at SP epsilon = 0.03 (test set)");
  std::printf("rows per dataset: compas=%zu adult=%zu lsac=%zu bank=%zu, %d seeds\n",
              DefaultRows("compas"), DefaultRows("adult"), DefaultRows("lsac"),
              DefaultRows("bank"), seeds);

  for (const std::string& dataset : datasets) {
    std::printf("\n--- %s ---\n", dataset.c_str());
    std::printf("%-10s", "method");
    for (const std::string& model : models) std::printf(" %10s", model.c_str());
    std::printf(" %10s\n", "cmaes");

    // Collect aggregates: per (method, model) + unconstrained per model.
    std::vector<std::vector<Aggregate>> table(
        methods.size() + 1, std::vector<Aggregate>(models.size()));
    Aggregate thomas_agg;
    Aggregate unconstrained_cmaes;  // thomas column's reference = LR column
    for (int s = 0; s < seeds; ++s) {
      const Dataset data = MakeBenchDataset(dataset, 100 + s);
      const TrainValTestSplit split = SplitDefault(data, 200 + s);
      const FairnessSpec spec = MakeSpec(MainGroups(dataset), "sp", kEpsilon);
      for (size_t m = 0; m < models.size(); ++m) {
        table[0][m].Add(RunMethod("unconstrained", split, models[m], spec, s));
        for (size_t i = 0; i < methods.size(); ++i) {
          table[i + 1][m].Add(RunMethod(methods[i], split, models[m], spec, s));
        }
      }
      thomas_agg.Add(RunMethod("thomas", split, "lr", spec, s));
      // The CMA-ES column's unconstrained reference is the same CMA-ES
      // model family with a non-binding epsilon (not the LR baseline).
      FairnessSpec loose = spec;
      loose.epsilon = 10.0;
      unconstrained_cmaes.Add(RunMethod("thomas", split, "lr", loose, s));
    }

    std::printf("%-10s", "baselineAcc");
    for (size_t m = 0; m < models.size(); ++m) {
      std::printf(" %9.1f%%", 100.0 * table[0][m].MeanAccuracy());
    }
    std::printf(" %9.1f%%\n", 100.0 * unconstrained_cmaes.MeanAccuracy());

    for (size_t i = 0; i < methods.size(); ++i) {
      std::printf("%-10s", methods[i].c_str());
      for (size_t m = 0; m < models.size(); ++m) {
        std::printf(" %10s", Cell(table[i + 1][m], table[0][m]).c_str());
      }
      std::printf(" %10s\n", "NA(2)*");
    }
    std::printf("%-10s", "thomas");
    for (size_t m = 0; m < models.size(); ++m) std::printf(" %10s", "NA(2)");
    std::printf(" %10s\n", Cell(thomas_agg, unconstrained_cmaes).c_str());

    for (size_t m = 0; m < models.size(); ++m) {
      reporter.AddRow("accuracy_drop")
          .Label("dataset", dataset)
          .Label("method", "unconstrained")
          .Label("model", models[m])
          .Value("test_accuracy", table[0][m].MeanAccuracy());
      for (size_t i = 0; i < methods.size(); ++i) {
        const Aggregate& agg = table[i + 1][m];
        BenchReporter::Row& row = reporter.AddRow("accuracy_drop");
        row.Label("dataset", dataset)
            .Label("method", methods[i])
            .Label("model", models[m])
            .Label("cell", Cell(agg, table[0][m]));
        if (agg.runs > 0 && agg.AnySatisfied()) {
          row.Value("accuracy_drop",
                    agg.SatisfiedAccuracy() - table[0][m].MeanAccuracy())
              .Value("test_accuracy", agg.SatisfiedAccuracy());
        }
      }
    }
    reporter.AddRow("accuracy_drop")
        .Label("dataset", dataset)
        .Label("method", "thomas")
        .Label("model", "cmaes")
        .Label("cell", Cell(thomas_agg, unconstrained_cmaes));
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "table5_accuracy_drop",
      "Table 5: accuracy drop at SP epsilon = 0.03 (test set)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
