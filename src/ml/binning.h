#ifndef OMNIFAIR_ML_BINNING_H_
#define OMNIFAIR_ML_BINNING_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/matrix.h"

namespace omnifair {

/// How a tree builder searches for splits (DESIGN.md §11):
///   kExact     - per-node sort of every feature, O(features * n log n) per
///                node. The seed behavior; thresholds are midpoints between
///                adjacent example values present in the node.
///   kHistogram - LightGBM-style: each feature is pre-quantized into at most
///                255 bins once per feature matrix, split search scans bin
///                histograms in O(features * bins) per node, and children
///                reuse the parent histogram via subtraction. Thresholds are
///                still real doubles (midpoints of adjacent bin edges), so
///                prediction and serialization are unchanged.
enum class SplitMethod { kExact = 0, kHistogram = 1 };

/// A feature matrix pre-quantized for histogram split search. Immutable once
/// built; safe to share across threads, trees, and trainer clones.
///
/// Binning is a pure function of X (each row counts once — unit-weight
/// quantiles), NOT of the example weights, so one BinnedMatrix serves every
/// λ refit of a tuning run even though the weights change per fit.
class BinnedMatrix {
 public:
  /// Bin codes are uint8_t, so at most 255 bins (code 255 is unused head
  /// room kept for future missing-value support).
  static constexpr int kMaxBins = 255;

  /// Quantile-bins every column of X into at most `max_bins` bins
  /// (clamped to [2, kMaxBins]). Columns are binned independently — in
  /// parallel on the shared pool when `num_threads` > 1 — and each column is
  /// coded by a single serial scan, so the result is bit-identical for any
  /// thread count.
  static std::shared_ptr<const BinnedMatrix> Build(const Matrix& X,
                                                   int max_bins,
                                                   int num_threads = 1);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  int max_bins() const { return max_bins_; }

  /// Number of bins actually used by `feature` (1 for a constant column;
  /// equal to the distinct-value count when that is below max_bins).
  int NumBins(size_t feature) const {
    return static_cast<int>(boundaries_[feature].size()) + 1;
  }

  /// Column-major codes: Column(f)[i] is row i's bin index in feature f.
  const uint8_t* Column(size_t feature) const {
    return codes_.data() + feature * rows_;
  }

  /// The real-valued threshold realizing the split "bin <= b": the midpoint
  /// between the largest source value in bin b and the smallest in bin b+1.
  /// Valid for b in [0, NumBins(feature) - 2]. The coding invariant is
  ///   Column(f)[i] <= b  <=>  X(i, f) <= Boundary(f, b),
  /// so training-time partitions by code agree with prediction-time
  /// partitions by threshold.
  double Boundary(size_t feature, int bin) const {
    return boundaries_[feature][static_cast<size_t>(bin)];
  }

  /// Whether this binning was built from a matrix indistinguishable from X
  /// at the requested resolution (same storage, shape, sampled contents,
  /// and max_bins). Used by BinningCache to validate reuse.
  bool Matches(const Matrix& X, int max_bins) const;

 private:
  BinnedMatrix() = default;

  size_t rows_ = 0;
  size_t cols_ = 0;
  int max_bins_ = 0;
  const void* source_data_ = nullptr;
  uint64_t fingerprint_ = 0;
  /// boundaries_[f] is strictly increasing, NumBins(f) - 1 entries.
  std::vector<std::vector<double>> boundaries_;
  /// cols * rows codes, column-major.
  std::vector<uint8_t> codes_;
};

/// Per-node split-search statistics: two weighted accumulators per
/// (feature, bin) — (sum_w, sum_w_pos) for CART, (sum_grad, sum_hess) for
/// GBDT. Flattened with a uniform per-feature stride of max_bins so both
/// tree builders index it the same way. The parent-minus-sibling trick
/// (SubtractSibling) means only the smaller child of a split ever rescans
/// its rows; the larger child's histogram is derived by subtraction.
struct NodeHistogram {
  std::vector<double> first;
  std::vector<double> second;

  void Reset(const BinnedMatrix& binned) {
    const size_t size = binned.cols() * static_cast<size_t>(binned.max_bins());
    first.assign(size, 0.0);
    second.assign(size, 0.0);
  }

  /// In place: this -= smaller (elementwise). Turns a parent histogram into
  /// the larger child's. Runs on the simd axpy kernel with a = -1; the -1 * x
  /// product is exact, so fused or not, every element comes out as one
  /// correctly rounded subtraction — bit-identical across backends.
  void SubtractSibling(const NodeHistogram& smaller);
};

/// Accumulates (stat_a[i], stat_b[i]) over the sample rows into `hist`,
/// feature by feature. Each feature's pair of bin arrays is filled by
/// exactly one task with a serial scan in sample order, so the histograms
/// — and therefore the fitted trees — are bit-identical for any
/// `num_threads`. Small nodes stay serial regardless (the fan-out would
/// cost more than the scan).
void FillNodeHistogram(const BinnedMatrix& binned,
                       const std::vector<size_t>& samples,
                       const double* stat_a, const double* stat_b,
                       int num_threads, NodeHistogram* hist);

/// Thread-safe memo of the most recent BinnedMatrix. A trainer and all of
/// its Clone()s share one cache (a shared_ptr member copied on Clone), so a
/// tuning run that fits dozens of clones on the same X bins it exactly once:
/// the first fit builds (recorded in the `tree.hist_build_us` histogram),
/// every later fit reuses (counted by `tree.bins_reused`).
class BinningCache {
 public:
  std::shared_ptr<const BinnedMatrix> GetOrBuild(const Matrix& X, int max_bins,
                                                 int num_threads);

 private:
  std::mutex mu_;
  std::shared_ptr<const BinnedMatrix> cached_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_BINNING_H_
