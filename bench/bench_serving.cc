// Serving-path benchmark (DESIGN.md §15). Three sections:
//
//   bundle_load    - cold-load a 200-tree random forest from the versioned
//                    binary bundle vs. re-parsing the text serialization
//                    (min-of-3 each). The bundle must be >=10x faster: it
//                    memory-maps flat arrays instead of tokenizing text.
//   serving_closed - closed-loop BundleServer::Handle per model family at
//                    several batch sizes; reports QPS and p50/p99 latency
//                    from locally timed requests.
//   serving_open   - open-loop Submit storm against the bounded admission
//                    queue; reports offered/completed/shed and achieved QPS.
//
// Knobs: OMNIFAIR_BENCH_ROWS (dataset size), OMNIFAIR_BENCH_SEEDS (unused
// here; serving latency is deterministic given the model and batch plan).

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "ml/bundle.h"
#include "ml/random_forest.h"
#include "ml/serialization.h"
#include "serve/server.h"

namespace omnifair {
namespace bench {
namespace {

struct FittedModel {
  FeatureEncoder encoder;
  std::unique_ptr<Classifier> model;
};

FittedModel FitFamily(const std::string& trainer_name, const Dataset& data,
                      uint64_t seed) {
  FittedModel out;
  out.encoder.Fit(data);
  const Matrix X = out.encoder.Transform(data);
  out.model = MakeTrainer(trainer_name, seed)->Fit(X, data.labels());
  return out;
}

std::string BundlePath(const std::string& tag) {
  const std::filesystem::path dir(BenchReporter::OutputDirectory());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return (dir / ("bench_serving." + tag + ".ofb")).string();
}

/// Splits the full-dataset request into fixed-size batches (at most
/// `max_batches` so batch=1 does not enumerate the whole dataset).
std::vector<PredictRequest> SliceBatches(const PredictRequest& full,
                                         size_t batch_rows,
                                         size_t max_batches) {
  std::vector<PredictRequest> out;
  const size_t n = full.features.rows();
  for (size_t start = 0; start < n && out.size() < max_batches;
       start += batch_rows) {
    const size_t end = std::min(n, start + batch_rows);
    std::vector<size_t> index(end - start);
    std::iota(index.begin(), index.end(), start);
    PredictRequest request;
    request.features = full.features.SelectRows(index);
    if (!full.group_ids.empty()) {
      request.group_ids.assign(full.group_ids.begin() + start,
                               full.group_ids.begin() + end);
    }
    request.threshold = full.threshold;
    out.push_back(std::move(request));
  }
  return out;
}

double QuantileUs(std::vector<double>& latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t index = std::min(
      latencies_us.size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
  return latencies_us[index];
}

/// Cold-load comparison: the same 200-tree forest through the text
/// deserializer and through the binary bundle. Each path is timed min-of-3
/// (min, not mean: the fastest run has the least scheduler noise and both
/// paths see a warm page cache, so the comparison is parse cost only).
void RunBundleLoad(BenchReporter& reporter, const Dataset& data) {
  RandomForestOptions options;
  options.num_trees = 200;
  options.max_depth = 8;
  options.split_method = SplitMethod::kHistogram;
  FeatureEncoder encoder;
  encoder.Fit(data);
  const Matrix X = encoder.Transform(data);
  Stopwatch fit_watch;
  const auto model = RandomForestTrainer(options).Fit(X, data.labels());
  const double fit_seconds = fit_watch.ElapsedSeconds();

  const std::string text_path = BundlePath("rf200") + ".txt";
  const std::string bundle_path = BundlePath("rf200");
  OF_CHECK(SaveModel(*model, text_path).ok());
  BundleMeta meta;
  meta.sensitive_attribute = "race";
  OF_CHECK(WriteBundle(*model, encoder, meta, bundle_path).ok());

  double text_seconds = 1e30;
  double bundle_seconds = 1e30;
  for (int run = 0; run < 3; ++run) {
    Stopwatch watch;
    auto text_model = LoadModel(text_path);
    OF_CHECK(text_model.ok());
    text_seconds = std::min(text_seconds, watch.ElapsedSeconds());

    watch.Restart();
    auto bundle = ModelBundle::Open(bundle_path);
    OF_CHECK(bundle.ok());
    auto flat = (*bundle)->MakeModel();
    bundle_seconds = std::min(bundle_seconds, watch.ElapsedSeconds());
  }
  const double speedup =
      bundle_seconds > 0.0 ? text_seconds / bundle_seconds : 0.0;
  const auto text_bytes =
      static_cast<double>(std::filesystem::file_size(text_path));
  const auto bundle_bytes =
      static_cast<double>(std::filesystem::file_size(bundle_path));

  PrintHeader("Cold load: 200-tree RF, text deserialize vs binary bundle");
  std::printf("%-12s %12s %14s %10s %12s %12s\n", "model", "text (s)",
              "bundle (s)", "speedup", "text B", "bundle B");
  std::printf("%-12s %12.6f %14.6f %9.1fx %12.0f %12.0f\n", "rf200",
              text_seconds, bundle_seconds, speedup, text_bytes, bundle_bytes);

  reporter.AddRow("bundle_load")
      .Label("model", "rf200")
      .Value("fit_seconds", fit_seconds)
      .Value("text_load_seconds", text_seconds)
      .Value("bundle_load_seconds", bundle_seconds)
      .Value("load_speedup", speedup)
      .Value("text_bytes", text_bytes)
      .Value("bundle_bytes", bundle_bytes);
}

void RunClosedLoop(BenchReporter& reporter, const Dataset& data) {
  PrintHeader("Closed-loop serving (BundleServer::Handle)");
  std::printf("%-8s %10s %10s %12s %10s %10s\n", "family", "batch",
              "requests", "qps", "p50 (us)", "p99 (us)");

  for (const std::string& family : {"lr", "rf", "xgb", "nn"}) {
    FittedModel fitted = FitFamily(family, data, /*seed=*/31);
    const std::string path = BundlePath(family);
    BundleMeta meta;
    meta.sensitive_attribute = "race";
    OF_CHECK(WriteBundle(*fitted.model, fitted.encoder, meta, path).ok());
    auto bundle = ModelBundle::Open(path);
    OF_CHECK(bundle.ok());
    BundleServer server(*bundle);
    auto full = MakeRequest(**bundle, data, "race");
    OF_CHECK(full.ok());

    for (size_t batch_rows : {size_t{1}, size_t{16}, size_t{256}}) {
      const std::vector<PredictRequest> batches =
          SliceBatches(*full, batch_rows, /*max_batches=*/200);
      std::vector<double> latencies_us;
      long long rows_served = 0;
      Stopwatch watch;
      for (int pass = 0; pass < 3; ++pass) {
        for (const PredictRequest& request : batches) {
          Stopwatch request_watch;
          auto response = server.Handle(request);
          latencies_us.push_back(request_watch.ElapsedSeconds() * 1e6);
          OF_CHECK(response.ok());
          rows_served += static_cast<long long>(response->scores.size());
        }
      }
      const double elapsed = watch.ElapsedSeconds();
      const double qps =
          elapsed > 0.0 ? static_cast<double>(latencies_us.size()) / elapsed
                        : 0.0;
      const double p50 = QuantileUs(latencies_us, 0.50);
      const double p99 = QuantileUs(latencies_us, 0.99);
      OF_GAUGE_SET("serve.qps", qps);
      std::printf("%-8s %10zu %10zu %12.0f %10.1f %10.1f\n", family.c_str(),
                  batch_rows, latencies_us.size(), qps, p50, p99);
      reporter.AddRow("serving_closed")
          .Label("family", family)
          .Value("batch_rows", static_cast<double>(batch_rows))
          .Value("requests", static_cast<double>(latencies_us.size()))
          .Value("rows", static_cast<double>(rows_served))
          .Value("qps", qps)
          .Value("p50_us", p50)
          .Value("p99_us", p99);
    }
  }
}

void RunOpenLoop(BenchReporter& reporter, const Dataset& data) {
  PrintHeader("Open-loop Submit storm (bounded admission queue)");
  std::printf("%-8s %10s %10s %10s %10s %14s\n", "family", "in-flight",
              "offered", "done", "shed", "achieved qps");

  FittedModel fitted = FitFamily("xgb", data, /*seed=*/47);
  const std::string path = BundlePath("xgb_open");
  BundleMeta meta;
  meta.sensitive_attribute = "race";
  OF_CHECK(WriteBundle(*fitted.model, fitted.encoder, meta, path).ok());
  auto bundle = ModelBundle::Open(path);
  OF_CHECK(bundle.ok());
  auto full = MakeRequest(**bundle, data, "race");
  OF_CHECK(full.ok());
  const std::vector<PredictRequest> batches =
      SliceBatches(*full, /*batch_rows=*/64, /*max_batches=*/200);

  for (int max_in_flight : {4, 16}) {
    ServerOptions options;
    options.max_in_flight = max_in_flight;
    BundleServer server(*bundle, options);
    constexpr int kOffered = 200;
    int completed = 0;
    int shed = 0;
    long long rows_served = 0;
    std::vector<std::future<Result<PredictResponse>>> pending;
    Stopwatch watch;
    for (int i = 0; i < kOffered; ++i) {
      auto submitted = server.Submit(batches[i % batches.size()]);
      if (!submitted.ok()) {
        ++shed;
        continue;
      }
      pending.push_back(std::move(*submitted));
      // Drain periodically so the storm exercises admission instead of
      // shedding everything after the queue fills once.
      if (pending.size() >= static_cast<size_t>(max_in_flight)) {
        for (auto& f : pending) {
          auto response = f.get();
          OF_CHECK(response.ok());
          ++completed;
          rows_served += static_cast<long long>(response->scores.size());
        }
        pending.clear();
      }
    }
    for (auto& f : pending) {
      auto response = f.get();
      OF_CHECK(response.ok());
      ++completed;
      rows_served += static_cast<long long>(response->scores.size());
    }
    const double elapsed = watch.ElapsedSeconds();
    const double qps =
        elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;
    std::printf("%-8s %10d %10d %10d %10d %14.0f\n", "xgb", max_in_flight,
                kOffered, completed, shed, qps);
    reporter.AddRow("serving_open")
        .Label("family", "xgb")
        .Value("max_in_flight", static_cast<double>(max_in_flight))
        .Value("offered", static_cast<double>(kOffered))
        .Value("completed", static_cast<double>(completed))
        .Value("rejected", static_cast<double>(shed))
        .Value("rows", static_cast<double>(rows_served))
        .Value("achieved_qps", qps);
  }
}

void Run(BenchReporter& reporter) {
  const Dataset data = MakeBenchDataset("compas", /*seed=*/901);
  reporter.Config("dataset", "compas");
  reporter.Config("rows", static_cast<double>(data.NumRows()));
  RunBundleLoad(reporter, data);
  RunClosedLoop(reporter, data);
  RunOpenLoop(reporter, data);
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "serving", "Bundle cold load and batched serving throughput");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
