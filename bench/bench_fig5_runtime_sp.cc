// Reproduces Figure 5: wall-clock training time of all methods under an SP
// constraint with the LR model, on Adult, COMPAS and LSAC. Expected shape:
// OmniFair is in the preprocessing class (Kamiran/Calmon ballpark) and
// clearly faster than the in-processing methods — about an order of
// magnitude vs Agarwal (reductions) and Celis (dense multiplier grid).

#include "bench/bench_common.h"

namespace omnifair {
namespace bench {
namespace {

void Run(BenchReporter& reporter) {
  const int seeds = EnvSeeds(2);
  reporter.Config("seeds", seeds);
  reporter.Config("metric", "sp");
  reporter.Config("epsilon", 0.03);
  PrintHeader("Figure 5: running time under SP constraint (LR)");
  const std::vector<std::string> methods = {"kamiran", "calmon", "omnifair",
                                            "zafar", "agarwal", "celis"};
  std::printf("%-10s", "dataset");
  for (const std::string& method : methods) std::printf(" %12s", method.c_str());
  std::printf("\n");

  for (const std::string& dataset : {"adult", "compas", "lsac"}) {
    std::printf("%-10s", dataset.c_str());
    for (const std::string& method : methods) {
      Aggregate agg;
      for (int s = 0; s < seeds; ++s) {
        const Dataset data = MakeBenchDataset(dataset, 1500 + s);
        const TrainValTestSplit split = SplitDefault(data, 1600 + s);
        const FairnessSpec spec = MakeSpec(MainGroups(dataset), "sp", 0.03);
        const MethodResult result = RunMethod(method, split, "lr", spec, s);
        if (result.supported) agg.Add(result);
      }
      if (agg.runs == 0) {
        std::printf(" %12s", "NA");
      } else {
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%.2fs", agg.MeanSeconds());
        std::printf(" %12s", cell);
      }
      reporter.AddAggregate("runtime", agg)
          .Label("dataset", dataset)
          .Label("method", method);
    }
    std::printf("\n");
  }
  std::printf("\n(model fits per method are reported by bench_microbench;"
              " OmniFair ~ O(log(1/tau)) fits vs Celis' dense grid)\n");
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "fig5_runtime_sp", "Figure 5: running time under SP constraint (LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
