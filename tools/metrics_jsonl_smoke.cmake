# Smoke-tests the metrics exporter end to end: runs one bench at tiny
# settings with OMNIFAIR_METRICS_OUT pointing into OUT_DIR and validates the
# JSONL it appends with tools/check_metrics_jsonl.py (schema, seq, deltas,
# final-line flush). Invoked by the metrics_jsonl_smoke ctest target
# (bench/CMakeLists.txt) as:
#   cmake -D BENCH_BINARY=... -D CHECKER=.../check_metrics_jsonl.py
#         -D PYTHON=... -D OUT_DIR=... -P metrics_jsonl_smoke.cmake

foreach(required BENCH_BINARY CHECKER PYTHON OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "metrics_jsonl_smoke.cmake: missing -D ${required}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

set(metrics_file ${OUT_DIR}/metrics.jsonl)
set(ENV{OMNIFAIR_BENCH_ROWS} 400)
set(ENV{OMNIFAIR_BENCH_SEEDS} 1)
set(ENV{OMNIFAIR_BENCH_OUT} ${OUT_DIR})
set(ENV{OMNIFAIR_TELEMETRY} counters)
set(ENV{OMNIFAIR_METRICS_OUT} ${metrics_file})
set(ENV{OMNIFAIR_METRICS_INTERVAL_MS} 25)

execute_process(COMMAND ${BENCH_BINARY} RESULT_VARIABLE bench_result
                OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench exited with status ${bench_result}")
endif()

if(NOT EXISTS ${metrics_file})
  message(FATAL_ERROR "exporter wrote no JSONL to ${metrics_file}")
endif()

execute_process(COMMAND ${PYTHON} ${CHECKER} ${metrics_file}
                RESULT_VARIABLE check_result)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "metrics JSONL failed validation")
endif()
