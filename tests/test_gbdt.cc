#include "ml/gbdt.h"

#include <cmath>
#include <gtest/gtest.h>

#include "tests/testing_data.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;
using testing_data::MakeXor;
using testing_data::TrainAccuracy;

TEST(GbdtTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  GbdtTrainer trainer;
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.95);
}

TEST(GbdtTest, LearnsSeparableData) {
  const Blobs blobs = MakeBlobs(500, 2.0, 2);
  GbdtTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.97);
}

TEST(GbdtTest, MoreRoundsFitBetter) {
  const Blobs xor_data = MakeXor(500, 3);
  GbdtOptions few_options;
  few_options.num_rounds = 2;
  GbdtOptions many_options;
  many_options.num_rounds = 40;
  GbdtTrainer few(few_options);
  GbdtTrainer many(many_options);
  const double acc_few = TrainAccuracy(
      *few.Fit(xor_data.X, xor_data.y, xor_data.unit_weights), xor_data);
  const double acc_many = TrainAccuracy(
      *many.Fit(xor_data.X, xor_data.y, xor_data.unit_weights), xor_data);
  EXPECT_GE(acc_many, acc_few);
}

TEST(GbdtTest, NumTreesMatchesRounds) {
  const Blobs blobs = MakeBlobs(100, 1.0, 4);
  GbdtOptions options;
  options.num_rounds = 12;
  GbdtTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* gbdt = dynamic_cast<const GbdtModel*>(model.get());
  ASSERT_NE(gbdt, nullptr);
  EXPECT_EQ(gbdt->NumTrees(), 12u);
}

TEST(GbdtTest, Deterministic) {
  const Blobs blobs = MakeBlobs(300, 1.0, 5);
  GbdtTrainer a;
  GbdtTrainer b;
  EXPECT_EQ(a.Fit(blobs.X, blobs.y, blobs.unit_weights)->Predict(blobs.X),
            b.Fit(blobs.X, blobs.y, blobs.unit_weights)->Predict(blobs.X));
}

TEST(GbdtTest, RawScoreIsLogOdds) {
  const Blobs blobs = MakeBlobs(200, 2.0, 6);
  GbdtTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* gbdt = dynamic_cast<const GbdtModel*>(model.get());
  ASSERT_NE(gbdt, nullptr);
  const std::vector<double> raw = gbdt->PredictRaw(blobs.X);
  const std::vector<double> proba = gbdt->PredictProba(blobs.X);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(proba[i], 1.0 / (1.0 + std::exp(-raw[i])), 1e-12);
  }
}

TEST(GbdtTest, ZeroWeightExamplesIgnored) {
  Blobs blobs = MakeBlobs(400, 2.5, 7);
  Blobs corrupted = blobs;
  std::vector<double> weights(blobs.y.size(), 1.0);
  for (size_t i = 0; i < blobs.y.size(); i += 2) {
    corrupted.y[i] = 1 - corrupted.y[i];
    weights[i] = 0.0;
  }
  GbdtTrainer trainer;
  const auto model = trainer.Fit(corrupted.X, corrupted.y, weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.93);
}

TEST(GbdtTest, UpweightingShiftsPositiveRate) {
  const Blobs blobs = MakeBlobs(400, 0.5, 8);
  GbdtTrainer trainer;
  const auto base = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  std::vector<double> boosted(blobs.y.size());
  for (size_t i = 0; i < blobs.y.size(); ++i) {
    boosted[i] = blobs.y[i] == 1 ? 6.0 : 1.0;
  }
  const auto heavy = trainer.Fit(blobs.X, blobs.y, boosted);
  double base_rate = 0.0;
  double heavy_rate = 0.0;
  for (int p : base->Predict(blobs.X)) base_rate += p;
  for (int p : heavy->Predict(blobs.X)) heavy_rate += p;
  EXPECT_GT(heavy_rate, base_rate);
}

}  // namespace
}  // namespace omnifair
