#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "core/problem.h"
#include "data/datasets.h"
#include "ml/logistic_regression.h"
#include "tests/testing_data.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;
using testing_data::MakeXor;
using testing_data::TrainAccuracy;

std::vector<DecisionTreeModel::Node> FitNodes(const Blobs& blobs,
                                              const DecisionTreeOptions& options) {
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* tree = dynamic_cast<const DecisionTreeModel*>(model.get());
  EXPECT_NE(tree, nullptr);
  return tree->nodes();
}

void ExpectSameNodes(const std::vector<DecisionTreeModel::Node>& a,
                     const std::vector<DecisionTreeModel::Node>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_leaf, b[i].is_leaf) << "node " << i;
    EXPECT_EQ(a[i].feature, b[i].feature) << "node " << i;
    EXPECT_EQ(a[i].threshold, b[i].threshold) << "node " << i;
    EXPECT_EQ(a[i].left, b[i].left) << "node " << i;
    EXPECT_EQ(a[i].right, b[i].right) << "node " << i;
    EXPECT_EQ(a[i].probability, b[i].probability) << "node " << i;
  }
}

TEST(DecisionTreeTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  DecisionTreeTrainer trainer;
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.95);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityVote) {
  Blobs blobs = MakeBlobs(100, 2.0, 2);
  // Force 70/30 labels.
  for (size_t i = 0; i < blobs.y.size(); ++i) blobs.y[i] = i < 70 ? 1 : 0;
  DecisionTreeOptions options;
  options.max_depth = 0;
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const std::vector<int> preds = model->Predict(blobs.X);
  for (int p : preds) EXPECT_EQ(p, 1);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  const Blobs xor_data = MakeXor(500, 3);
  DecisionTreeOptions options;
  options.max_depth = 3;
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  const auto* tree = dynamic_cast<const DecisionTreeModel*>(model.get());
  ASSERT_NE(tree, nullptr);
  EXPECT_LE(tree->Depth(), 3);
}

TEST(DecisionTreeTest, PureNodeStopsSplitting) {
  Blobs blobs = MakeBlobs(50, 2.0, 4);
  for (int& y : blobs.y) y = 1;  // all one class
  DecisionTreeTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* tree = dynamic_cast<const DecisionTreeModel*>(model.get());
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->NumNodes(), 1u);
}

TEST(DecisionTreeTest, WeightsChangeLeafProbabilities) {
  // A single ambiguous region: weighting flips the majority.
  Matrix X(4, 1);
  X(0, 0) = X(1, 0) = X(2, 0) = X(3, 0) = 0.0;  // identical features
  const std::vector<int> y = {1, 1, 0, 0};
  DecisionTreeTrainer trainer;
  const auto balanced = trainer.Fit(X, y, {1.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(balanced->PredictProba(X)[0], 0.5, 1e-12);
  const auto skewed = trainer.Fit(X, y, {3.0, 3.0, 1.0, 1.0});
  EXPECT_NEAR(skewed->PredictProba(X)[0], 0.75, 1e-12);
  EXPECT_EQ(skewed->Predict(X)[0], 1);
}

TEST(DecisionTreeTest, ZeroWeightExamplesIgnored) {
  Blobs blobs = MakeBlobs(300, 2.5, 5);
  Blobs corrupted = blobs;
  std::vector<double> weights(blobs.y.size(), 1.0);
  for (size_t i = 0; i < blobs.y.size(); i += 3) {
    corrupted.y[i] = 1 - corrupted.y[i];
    weights[i] = 0.0;
  }
  DecisionTreeTrainer trainer;
  const auto model = trainer.Fit(corrupted.X, corrupted.y, weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.93);
}

TEST(DecisionTreeTest, DeterministicWithFullFeatures) {
  const Blobs xor_data = MakeXor(400, 6);
  DecisionTreeTrainer a;
  DecisionTreeTrainer b;
  const auto ma = a.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  const auto mb = b.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_EQ(ma->Predict(xor_data.X), mb->Predict(xor_data.X));
}

TEST(DecisionTreeHistogramTest, LearnsXor) {
  const Blobs xor_data = MakeXor(600, 1);
  DecisionTreeOptions options;
  options.split_method = SplitMethod::kHistogram;
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(xor_data.X, xor_data.y, xor_data.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, xor_data), 0.95);
}

TEST(DecisionTreeHistogramTest, ThreadCountDoesNotChangeTree) {
  // Determinism contract (DESIGN.md §11): same seed => bit-identical nodes
  // at 1 and N threads, because every per-feature fill is a serial scan.
  const Blobs blobs = MakeBlobs(4000, 0.8, 9);
  DecisionTreeOptions serial;
  serial.split_method = SplitMethod::kHistogram;
  serial.max_bins = 64;
  serial.num_threads = 1;
  DecisionTreeOptions parallel = serial;
  parallel.num_threads = 4;
  ExpectSameNodes(FitNodes(blobs, serial), FitNodes(blobs, parallel));
}

TEST(DecisionTreeHistogramTest, MatchesExactAccuracyOnSyntheticAdult) {
  SyntheticOptions data_options;
  data_options.num_rows = 3000;
  data_options.seed = 19;
  const Dataset data = MakeAdultDataset(data_options);
  LogisticRegressionTrainer encoder_helper;  // encoder via a FairnessProblem
  auto problem = FairnessProblem::Create(
      data, data,
      {MakeSpec(GroupByAttributeValues("sex", {"Male", "Female"}), "sp", 0.05)},
      &encoder_helper);
  ASSERT_TRUE(problem.ok()) << problem.status();
  const Matrix& X = (*problem)->train_features();
  const std::vector<int>& y = (*problem)->train().labels();

  DecisionTreeOptions exact;
  DecisionTreeOptions hist = exact;
  hist.split_method = SplitMethod::kHistogram;
  DecisionTreeTrainer exact_trainer(exact);
  DecisionTreeTrainer hist_trainer(hist);
  const double exact_acc = Accuracy(y, exact_trainer.Fit(X, y)->Predict(X));
  const double hist_acc = Accuracy(y, hist_trainer.Fit(X, y)->Predict(X));
  EXPECT_NEAR(hist_acc, exact_acc, 0.02);
}

TEST(DecisionTreeHistogramTest, CoarseBinsStillLearn) {
  const Blobs blobs = MakeBlobs(800, 2.0, 12);
  DecisionTreeOptions options;
  options.split_method = SplitMethod::kHistogram;
  options.max_bins = 8;
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.95);
}

TEST(DecisionTreeTest, MinWeightLeafPreventsTinySplits) {
  const Blobs blobs = MakeBlobs(100, 0.3, 7);
  DecisionTreeOptions options;
  options.min_weight_leaf = 40.0;
  options.min_weight_split = 80.0;
  DecisionTreeTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto* tree = dynamic_cast<const DecisionTreeModel*>(model.get());
  ASSERT_NE(tree, nullptr);
  // At most one split is possible under these weight floors.
  EXPECT_LE(tree->NumNodes(), 3u);
}

}  // namespace
}  // namespace omnifair
