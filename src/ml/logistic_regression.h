#ifndef OMNIFAIR_ML_LOGISTIC_REGRESSION_H_
#define OMNIFAIR_ML_LOGISTIC_REGRESSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace omnifair {

/// Hyperparameters for weighted logistic regression.
struct LogisticRegressionOptions {
  /// L2 regularization strength on the non-intercept coefficients.
  double l2 = 1e-4;
  /// Maximum full-batch gradient iterations.
  int max_iterations = 300;
  /// Convergence threshold on the gradient's infinity norm. The default
  /// matches scikit-learn's working precision: accuracy stops changing well
  /// before 1e-4, and a reachable threshold is what lets warm starts
  /// (initializing near the optimum) actually save iterations.
  double tolerance = 1e-4;
  /// Initial learning rate for backtracking line search.
  double learning_rate = 1.0;
  /// Divergence recovery (DESIGN.md §8): when the loss or gradient goes
  /// non-finite, training rolls back to the last finite checkpoint with a
  /// halved learning rate, at most this many times before giving up and
  /// returning the checkpoint model.
  int max_divergence_retries = 3;
  /// Mini-batch SGD (DESIGN.md §16): 0 keeps the exact full-batch path above
  /// (bit-identical to the default trainer); any positive value switches to
  /// weighted SGD over contiguous batches of this many rows, visited in a
  /// deterministic per-epoch shuffle drawn from `shuffle_seed`. Updates are
  /// applied serially, so results are bit-reproducible at any thread count.
  size_t batch_size = 0;
  /// Epochs (full passes over the data) for the mini-batch path; the
  /// full-batch path uses max_iterations instead.
  int epochs = 5;
  /// Per-batch step-size decay for the mini-batch path.
  LrSchedule lr_schedule = LrSchedule::kConstant;
  /// Seed for the per-epoch batch-order shuffle.
  uint64_t shuffle_seed = 17;
};

/// A trained logistic regression model: p(y=1|x) = sigmoid(w.x + b).
class LogisticRegressionModel : public Classifier {
 public:
  LogisticRegressionModel(std::vector<double> coefficients, double intercept);

  std::vector<double> PredictProba(const Matrix& X) const override;
  std::string Name() const override { return "logistic_regression"; }

  const std::vector<double>& coefficients() const { return coefficients_; }
  double intercept() const { return intercept_; }

 private:
  std::vector<double> coefficients_;
  double intercept_;
};

/// Weighted logistic regression trained by full-batch gradient descent with
/// Nesterov momentum and backtracking line search. Supports warm starts:
/// when enabled, each Fit initializes from the previous solution, which is
/// the Table 6 optimization in the paper (1.2-3.4x speedups when Algorithm 1
/// retrains across nearby lambda values).
class LogisticRegressionTrainer : public Trainer {
 public:
  explicit LogisticRegressionTrainer(LogisticRegressionOptions options = {});

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override;
  using Trainer::Fit;

  std::string Name() const override { return "logistic_regression"; }
  std::unique_ptr<Trainer> Clone() const override {
    return std::make_unique<LogisticRegressionTrainer>(options_);
  }
  bool SupportsWarmStart() const override { return true; }
  void SetWarmStart(bool enabled) override { warm_start_ = enabled; }
  void ResetWarmStart() override { warm_theta_.clear(); }

  /// Total gradient-descent iterations across all Fit calls (for the warm
  /// start speedup accounting in bench_table6).
  long long total_iterations() const { return total_iterations_; }

 private:
  /// Weighted mini-batch SGD path (options_.batch_size > 0); same divergence
  /// rollback/backoff semantics as the full-batch loop.
  std::unique_ptr<Classifier> FitMiniBatch(const Matrix& X,
                                           const std::vector<int>& y,
                                           const std::vector<double>& weights);

  LogisticRegressionOptions options_;
  bool warm_start_ = false;
  std::vector<double> warm_theta_;  // coefficients + intercept (last slot)
  long long total_iterations_ = 0;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_LOGISTIC_REGRESSION_H_
