#include "baselines/baseline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/reweighing.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"

namespace omnifair {
namespace {

struct Fixture {
  Dataset data;
  TrainValTestSplit split;
  FairnessSpec sp_spec;

  Fixture() {
    SyntheticOptions options;
    options.num_rows = 3000;
    options.seed = 4;
    data = MakeCompasDataset(options);
    split = SplitDefault(data, 19);
    sp_spec = MakeSpec(
        GroupByAttributeValues("race", {"African-American", "Caucasian"}), "sp",
        0.05);
  }
};

TEST(BaselineFactoryTest, AllNamesConstruct) {
  for (const std::string& name : AllBaselineNames()) {
    auto baseline = MakeBaseline(name);
    ASSERT_NE(baseline, nullptr) << name;
    EXPECT_EQ(baseline->Name(), name);
  }
}

/// All baselines train and report coherent results on the COMPAS SP task.
class BaselineSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineSmokeTest, TrainsOnCompasSp) {
  Fixture fx;
  auto baseline = MakeBaseline(GetParam());
  auto trainer = MakeTrainer("lr");
  auto result =
      baseline->Train(fx.split.train, fx.split.val, trainer.get(), fx.sp_spec);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->model, nullptr);
  EXPECT_GT(result->val_accuracy, 0.5);
  EXPECT_GE(result->models_trained, 1);
  ASSERT_EQ(result->val_fairness_parts.size(), 1u);
  if (result->satisfied) {
    EXPECT_LE(std::fabs(result->val_fairness_parts[0]),
              fx.sp_spec.epsilon + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineSmokeTest,
                         ::testing::Values("kamiran", "calmon", "zafar", "celis",
                                           "agarwal", "thomas"));

TEST(KamiranTest, WeightsRemoveGroupLabelDependence) {
  // Property: under Kamiran weights, the weighted joint P(g, y) factorizes
  // into P(g) * P(y).
  Fixture fx;
  const GroupMap groups = fx.sp_spec.grouping(fx.split.train);
  const std::vector<double> weights =
      KamiranReweighing::ComputeWeights(fx.split.train, groups);

  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  for (const auto& [name, members] : groups) {
    double group_weight = 0.0;
    double group_pos_weight = 0.0;
    for (size_t i : members) {
      group_weight += weights[i];
      if (fx.split.train.Label(i) == 1) group_pos_weight += weights[i];
    }
    double all_pos_weight = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (fx.split.train.Label(i) == 1) all_pos_weight += weights[i];
    }
    // P_w(y=1 | g) == P_w(y=1) after reweighing.
    EXPECT_NEAR(group_pos_weight / group_weight, all_pos_weight / total_weight,
                0.02)
        << name;
  }
}

TEST(KamiranTest, RejectsNonSpMetrics) {
  Fixture fx;
  auto baseline = MakeBaseline("kamiran");
  auto trainer = MakeTrainer("lr");
  FairnessSpec fdr = fx.sp_spec;
  fdr.metric = MakeMetricByName("fdr");
  auto result = baseline->Train(fx.split.train, fx.split.val, trainer.get(), fdr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(ZafarTest, RejectsNonLrTrainers) {
  Fixture fx;
  auto baseline = MakeBaseline("zafar");
  auto rf = MakeTrainer("rf");
  EXPECT_FALSE(baseline->SupportsTrainer(*rf));
  auto result = baseline->Train(fx.split.train, fx.split.val, rf.get(), fx.sp_spec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(CelisTest, RejectsNonLrTrainers) {
  Fixture fx;
  auto baseline = MakeBaseline("celis");
  auto xgb = MakeTrainer("xgb");
  EXPECT_FALSE(baseline->SupportsTrainer(*xgb));
}

TEST(CelisTest, SupportsFdr) {
  auto baseline = MakeBaseline("celis");
  EXPECT_TRUE(baseline->SupportsMetric(*MakeMetricByName("fdr")));
  EXPECT_TRUE(baseline->SupportsMetric(*MakeMetricByName("for")));
}

TEST(AgarwalTest, DoesNotSupportFdr) {
  auto baseline = MakeBaseline("agarwal");
  EXPECT_FALSE(baseline->SupportsMetric(*MakeMetricByName("fdr")));
  EXPECT_TRUE(baseline->SupportsMetric(*MakeMetricByName("fpr")));
}

TEST(AgarwalTest, ModelAgnosticAcrossTrainers) {
  Fixture fx;
  auto baseline = MakeBaseline("agarwal");
  auto dt = MakeTrainer("dt");
  EXPECT_TRUE(baseline->SupportsTrainer(*dt));
  auto result = baseline->Train(fx.split.train, fx.split.val, dt.get(), fx.sp_spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->model, nullptr);
}

TEST(ThomasTest, BringsItsOwnModel) {
  Fixture fx;
  auto baseline = MakeBaseline("thomas");
  auto lr = MakeTrainer("lr");
  EXPECT_FALSE(baseline->SupportsTrainer(*lr));  // NA(2)* in Table 5
  // Works with a null trainer — it never uses one.
  auto result = baseline->Train(fx.split.train, fx.split.val, nullptr, fx.sp_spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->val_accuracy, 0.6);
}

TEST(CalmonTest, UnsupportedDatasetReportsUnsatisfied) {
  // LSAC lacks the dataset-specific distortion parameters (paper NA(1)).
  SyntheticOptions options;
  options.num_rows = 2000;
  options.seed = 6;
  const Dataset lsac = MakeLsacDataset(options);
  const TrainValTestSplit split = SplitDefault(lsac, 23);
  const FairnessSpec spec =
      MakeSpec(GroupByAttributeValues("race", {"White", "Black"}), "sp", 0.03);
  auto baseline = MakeBaseline("calmon");
  auto trainer = MakeTrainer("lr");
  auto result = baseline->Train(split.train, split.val, trainer.get(), spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_NE(result->model, nullptr);  // best-effort unconstrained model
}

}  // namespace
}  // namespace omnifair
