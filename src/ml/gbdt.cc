#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/vector_ops.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace omnifair {
namespace {

// Rows per PredictRaw task, matching RandomForestModel's chunking.
constexpr size_t kPredictChunkRows = 256;

/// Builds one regression tree on (grad, hess) and returns the node array.
class GbdtTreeBuilder {
 public:
  GbdtTreeBuilder(const Matrix& X, const std::vector<double>& grad,
                  const std::vector<double>& hess, const GbdtOptions& options)
      : X_(X), grad_(grad), hess_(hess), options_(options) {}

  std::vector<GbdtTreeNode> Build() {
    std::vector<size_t> all(X_.rows());
    std::iota(all.begin(), all.end(), 0);
    BuildNode(std::move(all), 0);
    return std::move(nodes_);
  }

 private:
  double LeafValue(double g, double h) const {
    return -g / (h + options_.reg_lambda);
  }

  double ScoreHalf(double g, double h) const {
    return g * g / (h + options_.reg_lambda);
  }

  int BuildNode(std::vector<size_t> samples, int depth) {
    double g_total = 0.0;
    double h_total = 0.0;
    for (size_t i : samples) {
      g_total += grad_[i];
      h_total += hess_[i];
    }

    const int node_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_index].value = LeafValue(g_total, h_total);

    if (depth >= options_.max_depth || samples.size() < 2 ||
        h_total < 2.0 * options_.min_child_weight) {
      return node_index;
    }

    // Exact greedy split: per feature, sort and scan.
    bool found = false;
    size_t best_feature = 0;
    double best_threshold = 0.0;
    double best_gain = options_.min_split_gain;
    order_.assign(samples.begin(), samples.end());
    const double parent_score = ScoreHalf(g_total, h_total);
    for (size_t feature = 0; feature < X_.cols(); ++feature) {
      std::sort(order_.begin(), order_.end(), [this, feature](size_t a, size_t b) {
        return X_(a, feature) < X_(b, feature);
      });
      double g_left = 0.0;
      double h_left = 0.0;
      for (size_t k = 0; k + 1 < order_.size(); ++k) {
        const size_t i = order_[k];
        g_left += grad_[i];
        h_left += hess_[i];
        const double value = X_(i, feature);
        const double next_value = X_(order_[k + 1], feature);
        if (next_value <= value) continue;
        const double h_right = h_total - h_left;
        if (h_left < options_.min_child_weight || h_right < options_.min_child_weight) {
          continue;
        }
        const double g_right = g_total - g_left;
        const double gain =
            0.5 * (ScoreHalf(g_left, h_left) + ScoreHalf(g_right, h_right) -
                   parent_score);
        if (gain > best_gain + 1e-12) {
          found = true;
          best_feature = feature;
          best_threshold = 0.5 * (value + next_value);
          best_gain = gain;
        }
      }
    }
    if (!found) return node_index;

    std::vector<size_t> left_samples;
    std::vector<size_t> right_samples;
    for (size_t i : samples) {
      (X_(i, best_feature) <= best_threshold ? left_samples : right_samples)
          .push_back(i);
    }
    if (left_samples.empty() || right_samples.empty()) return node_index;
    samples.clear();
    samples.shrink_to_fit();

    const int left = BuildNode(std::move(left_samples), depth + 1);
    const int right = BuildNode(std::move(right_samples), depth + 1);
    nodes_[node_index].is_leaf = false;
    nodes_[node_index].feature = static_cast<int>(best_feature);
    nodes_[node_index].threshold = best_threshold;
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  const Matrix& X_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
  const GbdtOptions& options_;
  std::vector<GbdtTreeNode> nodes_;
  /// Per-node scratch, hoisted so split search does not allocate per node.
  std::vector<size_t> order_;
};

/// Histogram-mode builder (DESIGN.md §11): per-feature (sum_grad, sum_hess)
/// bin histograms replace the per-node sort, and each split rescans only the
/// smaller child (the larger one is parent minus sibling). Stopping rules,
/// gain arithmetic, and tie-breaking mirror GbdtTreeBuilder; only the
/// candidate threshold set differs.
class GbdtHistTreeBuilder {
 public:
  GbdtHistTreeBuilder(const Matrix& X, const std::vector<double>& grad,
                      const std::vector<double>& hess, const GbdtOptions& options,
                      const BinnedMatrix& binned)
      : X_(X),
        grad_(grad),
        hess_(hess),
        options_(options),
        binned_(binned),
        stride_(static_cast<size_t>(binned.max_bins())) {}

  std::vector<GbdtTreeNode> Build() {
    std::vector<size_t> all(X_.rows());
    std::iota(all.begin(), all.end(), 0);
    NodeHistogram root;
    FillNodeHistogram(binned_, all, grad_.data(), hess_.data(),
                      options_.num_threads, &root);
    BuildNode(std::move(all), std::move(root), 0);
    return std::move(nodes_);
  }

 private:
  double LeafValue(double g, double h) const {
    return -g / (h + options_.reg_lambda);
  }

  double ScoreHalf(double g, double h) const {
    return g * g / (h + options_.reg_lambda);
  }

  int BuildNode(std::vector<size_t> samples, NodeHistogram hist, int depth) {
    double g_total = 0.0;
    double h_total = 0.0;
    for (size_t i : samples) {
      g_total += grad_[i];
      h_total += hess_[i];
    }

    const int node_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_index].value = LeafValue(g_total, h_total);

    if (depth >= options_.max_depth || samples.size() < 2 ||
        h_total < 2.0 * options_.min_child_weight) {
      return node_index;
    }

    bool found = false;
    size_t best_feature = 0;
    int best_bin = -1;
    double best_threshold = 0.0;
    double best_gain = options_.min_split_gain;
    const double parent_score = ScoreHalf(g_total, h_total);
    for (size_t feature = 0; feature < X_.cols(); ++feature) {
      const int num_bins = binned_.NumBins(feature);
      const double* hg = hist.first.data() + feature * stride_;
      const double* hh = hist.second.data() + feature * stride_;
      double g_left = 0.0;
      double h_left = 0.0;
      for (int b = 0; b + 1 < num_bins; ++b) {
        g_left += hg[b];
        h_left += hh[b];
        const double h_right = h_total - h_left;
        if (h_left < options_.min_child_weight ||
            h_right < options_.min_child_weight) {
          continue;
        }
        const double g_right = g_total - g_left;
        const double gain =
            0.5 * (ScoreHalf(g_left, h_left) + ScoreHalf(g_right, h_right) -
                   parent_score);
        if (gain > best_gain + 1e-12) {
          found = true;
          best_feature = feature;
          best_bin = b;
          best_threshold = binned_.Boundary(feature, b);
          best_gain = gain;
        }
      }
    }
    if (!found) return node_index;

    const uint8_t* codes = binned_.Column(best_feature);
    std::vector<size_t> left_samples;
    std::vector<size_t> right_samples;
    left_samples.reserve(samples.size());
    right_samples.reserve(samples.size());
    for (size_t i : samples) {
      (codes[i] <= best_bin ? left_samples : right_samples).push_back(i);
    }
    if (left_samples.empty() || right_samples.empty()) return node_index;
    samples.clear();
    samples.shrink_to_fit();

    // Scan only the smaller child; the larger one inherits parent - sibling.
    const bool left_is_smaller = left_samples.size() <= right_samples.size();
    NodeHistogram small_hist;
    FillNodeHistogram(binned_, left_is_smaller ? left_samples : right_samples,
                      grad_.data(), hess_.data(), options_.num_threads,
                      &small_hist);
    hist.SubtractSibling(small_hist);
    NodeHistogram left_hist = left_is_smaller ? std::move(small_hist) : std::move(hist);
    NodeHistogram right_hist =
        left_is_smaller ? std::move(hist) : std::move(small_hist);

    const int left = BuildNode(std::move(left_samples), std::move(left_hist), depth + 1);
    const int right =
        BuildNode(std::move(right_samples), std::move(right_hist), depth + 1);
    nodes_[node_index].is_leaf = false;
    nodes_[node_index].feature = static_cast<int>(best_feature);
    nodes_[node_index].threshold = best_threshold;
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  const Matrix& X_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
  const GbdtOptions& options_;
  const BinnedMatrix& binned_;
  const size_t stride_;
  std::vector<GbdtTreeNode> nodes_;
};

/// Tree walk over either feature-element width: comparisons widen the stored
/// element to double, so float32 rows route exactly like double rows whose
/// values were narrowed at encode time.
template <typename T>
double PredictTree(const std::vector<GbdtTreeNode>& nodes, const T* row) {
  int index = 0;
  while (!nodes[index].is_leaf) {
    index = static_cast<double>(row[nodes[index].feature]) <=
                    nodes[index].threshold
                ? nodes[index].left
                : nodes[index].right;
  }
  return nodes[index].value;
}

template <typename T>
double PredictRawRowImpl(const std::vector<std::vector<GbdtTreeNode>>& trees,
                         double base_score, double learning_rate, const T* row) {
  double raw = base_score;
  for (const auto& tree : trees) raw += learning_rate * PredictTree(tree, row);
  return raw;
}

}  // namespace

GbdtModel::GbdtModel(std::vector<std::vector<GbdtTreeNode>> trees, double base_score,
                     double learning_rate, int num_threads)
    : trees_(std::move(trees)),
      base_score_(base_score),
      learning_rate_(learning_rate),
      num_threads_(std::max(1, num_threads)) {}

double GbdtModel::PredictRawRow(const double* row) const {
  return PredictRawRowImpl(trees_, base_score_, learning_rate_, row);
}

std::vector<double> GbdtModel::PredictRaw(const Matrix& X) const {
  const size_t n = X.rows();
  const bool f32 = X.is_float32();
  std::vector<double> raw(n);
  auto score_rows = [&](size_t begin, size_t end) {
    if (f32) {
      for (size_t i = begin; i < end; ++i) {
        raw[i] = PredictRawRowImpl(trees_, base_score_, learning_rate_, X.RowF(i));
      }
    } else {
      for (size_t i = begin; i < end; ++i) raw[i] = PredictRawRow(X.Row(i));
    }
  };
  if (num_threads_ <= 1 || n < 2 * kPredictChunkRows) {
    score_rows(0, n);
  } else {
    // Disjoint row chunks: no write overlap, and each row still sums its
    // trees in index order, so the result matches the serial path bit for
    // bit.
    const size_t chunks = (n + kPredictChunkRows - 1) / kPredictChunkRows;
    ThreadPool::Global().ParallelFor(
        chunks,
        [&](size_t c) {
          const size_t begin = c * kPredictChunkRows;
          score_rows(begin, std::min(n, begin + kPredictChunkRows));
        },
        num_threads_);
  }
  return raw;
}

std::vector<double> GbdtModel::PredictProba(const Matrix& X) const {
  // Raw margins land in the output buffer (chunk-parallel), then one batched
  // simd sigmoid pass converts them to probabilities in place.
  std::vector<double> proba = PredictRaw(X);
  SigmoidInPlace(&proba);
  return proba;
}

void GbdtModel::AccumulateProba(const Matrix& X, size_t row_begin, size_t row_end,
                                std::vector<double>& proba) const {
  // Blocked accumulate: stage raw margins for a block of rows in a
  // stack-resident scratch (2 KB — one reused buffer per pool worker, since
  // chunked callers run one block per task), sigmoid the block in one batched
  // pass, then add. Keeps the sigmoid vectorized without touching `proba`'s
  // running sums.
  const bool f32 = X.is_float32();
  double scratch[kPredictChunkRows];
  for (size_t start = row_begin; start < row_end; start += kPredictChunkRows) {
    const size_t len = std::min(row_end - start, kPredictChunkRows);
    if (f32) {
      for (size_t j = 0; j < len; ++j) {
        scratch[j] = PredictRawRowImpl(trees_, base_score_, learning_rate_,
                                       X.RowF(start + j));
      }
    } else {
      for (size_t j = 0; j < len; ++j) scratch[j] = PredictRawRow(X.Row(start + j));
    }
    SigmoidInPlace(scratch, len);
    for (size_t j = 0; j < len; ++j) proba[start + j] += scratch[j];
  }
}

GbdtTrainer::GbdtTrainer(GbdtOptions options)
    : options_(options), bin_cache_(std::make_shared<BinningCache>()) {}

std::unique_ptr<Trainer> GbdtTrainer::Clone() const {
  auto clone = std::make_unique<GbdtTrainer>(options_);
  clone->bin_cache_ = bin_cache_;
  clone->preset_binned_ = preset_binned_;
  return clone;
}

std::unique_ptr<Classifier> GbdtTrainer::Fit(const Matrix& X,
                                             const std::vector<int>& y,
                                             const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  OF_TRACE_SPAN("fit/xgb");
  OF_SCOPED_LATENCY_US("ml.fit_us.xgb");
  const size_t n = X.rows();

  // Histogram mode bins X once per fit — and, via the cache shared across
  // Clone()s, once per tuning run: only the example weights change between
  // λ refits, never the binning (it is a pure function of X).
  std::shared_ptr<const BinnedMatrix> binned;
  if (options_.split_method == SplitMethod::kHistogram) {
    binned = preset_binned_;
    if (binned == nullptr || !binned->Matches(X, options_.max_bins)) {
      binned = bin_cache_->GetOrBuild(X, options_.max_bins, options_.num_threads);
    }
  }

  // Base score: weighted log-odds of the positive class.
  double w_pos = 0.0;
  double w_total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    w_total += weights[i];
    if (y[i] == 1) w_pos += weights[i];
  }
  double prior = w_total > 0.0 ? w_pos / w_total : 0.5;
  prior = std::clamp(prior, 1e-6, 1.0 - 1e-6);
  const double base_score = std::log(prior / (1.0 - prior));

  std::vector<double> raw(n, base_score);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  std::vector<std::vector<GbdtTreeNode>> trees;
  trees.reserve(options_.num_rounds);

  // Divergence recovery (DESIGN.md §8): a round whose tree makes any raw
  // score non-finite is dropped, and later trees have their leaf values
  // damped by `backoff`. `raw` therefore only ever holds finite scores.
  std::vector<double> candidate_raw(n);
  double backoff = 1.0;
  int retries = 0;
  for (int round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(raw[i]);
      grad[i] = weights[i] * (p - (y[i] == 1 ? 1.0 : 0.0));
      hess[i] = weights[i] * std::max(p * (1.0 - p), 1e-12);
    }
    std::vector<GbdtTreeNode> tree;
    if (binned != nullptr) {
      GbdtHistTreeBuilder builder(X, grad, hess, options_, *binned);
      tree = builder.Build();
    } else {
      GbdtTreeBuilder builder(X, grad, hess, options_);
      tree = builder.Build();
    }
    if (backoff < 1.0) {
      for (GbdtTreeNode& node : tree) node.value *= backoff;
    }
    bool diverged = FaultInjector::ShouldFail(fault_sites::kGbdtRound);
    candidate_raw = raw;
    if (X.is_float32()) {
      for (size_t i = 0; i < n; ++i) {
        candidate_raw[i] += options_.learning_rate * PredictTree(tree, X.RowF(i));
        diverged = diverged || !std::isfinite(candidate_raw[i]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        candidate_raw[i] += options_.learning_rate * PredictTree(tree, X.Row(i));
        diverged = diverged || !std::isfinite(candidate_raw[i]);
      }
    }
    if (diverged) {
      if (retries >= options_.max_divergence_retries) {
        OF_LOG(Warning) << "gbdt: divergence persisted after " << retries
                        << " retries; stopping with " << trees.size() << " trees";
        break;
      }
      ++retries;
      CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
      OF_LOG(Warning) << "gbdt: non-finite raw score at round " << round
                      << "; dropping tree and damping (retry " << retries << ")";
      backoff *= 0.5;
      continue;
    }
    raw.swap(candidate_raw);
    trees.push_back(std::move(tree));
  }
  return std::make_unique<GbdtModel>(std::move(trees), base_score,
                                     options_.learning_rate, options_.num_threads);
}

}  // namespace omnifair
