#include "data/synthetic_common.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace omnifair {
namespace synthetic {

Dataset Generate(const Schema& schema, const SyntheticOptions& options) {
  OF_CHECK_GE(schema.groups.size(), 2u) << schema.dataset_name;
  const size_t n = options.num_rows > 0 ? options.num_rows : schema.default_num_rows;
  Rng rng(options.seed);

  std::vector<double> proportions;
  std::vector<std::string> group_names;
  proportions.reserve(schema.groups.size());
  for (const GroupSpec& g : schema.groups) {
    proportions.push_back(g.proportion);
    group_names.push_back(g.name);
  }

  // Draw group and label assignments first.
  std::vector<int> group_of(n);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t g = rng.NextCategorical(proportions);
    group_of[i] = static_cast<int>(g);
    labels[i] = rng.NextBernoulli(schema.groups[g].positive_rate) ? 1 : 0;
  }

  Dataset dataset(schema.dataset_name);
  dataset.set_label_name(schema.label_name);

  // Sensitive attribute column.
  Column sensitive = Column::Categorical(schema.sensitive_attribute, group_names);
  for (size_t i = 0; i < n; ++i) sensitive.AppendCode(group_of[i]);
  dataset.AddColumn(std::move(sensitive));

  for (const NumericFeatureSpec& spec : schema.numeric_features) {
    if (!spec.group_shift.empty()) {
      OF_CHECK_EQ(spec.group_shift.size(), schema.groups.size())
          << "group_shift size for " << spec.name;
    }
    Column col = Column::Numeric(spec.name);
    for (size_t i = 0; i < n; ++i) {
      double value = spec.base_mean + spec.label_shift * labels[i];
      if (!spec.group_shift.empty()) value += spec.group_shift[group_of[i]];
      value += rng.NextGaussian(0.0, spec.noise_sd);
      value = std::clamp(value, spec.min_value, spec.max_value);
      if (spec.round_to_int) value = std::round(value);
      col.AppendNumeric(value);
    }
    dataset.AddColumn(std::move(col));
  }

  for (const CategoricalFeatureSpec& spec : schema.categorical_features) {
    OF_CHECK_EQ(spec.weights_y0.size(), spec.categories.size()) << spec.name;
    OF_CHECK_EQ(spec.weights_y1.size(), spec.categories.size()) << spec.name;
    Column col = Column::Categorical(spec.name, spec.categories);
    for (size_t i = 0; i < n; ++i) {
      const auto& weights = labels[i] == 1 ? spec.weights_y1 : spec.weights_y0;
      col.AppendCode(static_cast<int>(rng.NextCategorical(weights)));
    }
    dataset.AddColumn(std::move(col));
  }

  dataset.SetLabels(std::move(labels));
  return dataset;
}

}  // namespace synthetic
}  // namespace omnifair
