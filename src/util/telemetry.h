#ifndef OMNIFAIR_UTIL_TELEMETRY_H_
#define OMNIFAIR_UTIL_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace omnifair {

class JsonWriter;

// ---------------------------------------------------------------------------
// Telemetry levels (DESIGN.md §9)
// ---------------------------------------------------------------------------

/// How much observability the process pays for:
///   kOff       - no counters, no histograms, no spans, no TuneReport.
///   kCounters  - metrics registry active (counters/gauges/histograms) and
///                TuneReport recording; no trace spans. The default.
///   kFullTrace - everything, plus OF_TRACE_SPAN events for chrome://tracing.
enum class TelemetryLevel : int { kOff = 0, kCounters = 1, kFullTrace = 2 };

/// Per-Train telemetry knob threaded through OmniFairOptions. An unset
/// level inherits the process-global level; a set level overrides it for the
/// duration of the call (so `level = kOff` is an explicit zero-overhead
/// guarantee regardless of global state).
struct TelemetryOptions {
  std::optional<TelemetryLevel> level;
};

/// Process-global telemetry level (relaxed atomic; default kCounters).
void SetTelemetryLevel(TelemetryLevel level);
TelemetryLevel GetTelemetryLevel();

/// The level instrumentation actually consults: the innermost thread-local
/// ScopedTelemetryLevel override if one is active, else the global level.
TelemetryLevel EffectiveTelemetryLevel();

/// Reads OMNIFAIR_TELEMETRY (off | counters | trace) into the global level.
/// Unset or unrecognized values leave the level unchanged (a warning is
/// logged for unrecognized values). Benches call this at startup. Also starts
/// the process-global JSONL metrics exporter when OMNIFAIR_METRICS_OUT is set
/// (see util/metrics_export.h).
void InitTelemetryFromEnv();

/// RAII thread-local override of the telemetry level; nests.
class ScopedTelemetryLevel {
 public:
  explicit ScopedTelemetryLevel(TelemetryLevel level);
  ~ScopedTelemetryLevel();

  ScopedTelemetryLevel(const ScopedTelemetryLevel&) = delete;
  ScopedTelemetryLevel& operator=(const ScopedTelemetryLevel&) = delete;

 private:
  int previous_;  // -1 when no override was active before this one
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Monotonic counter. Increments are relaxed atomics (lock-free hot path).
class Counter {
 public:
  void Add(long long delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  long long Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  const std::string name_;
  std::atomic<long long> value_{0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  const std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: upper bounds are set at creation and never change,
/// so Record() is lock-free (a linear bucket scan plus relaxed atomics; the
/// default latency bucketing has 14 bounds, which beats binary search at this
/// size). Values above the last bound land in the overflow bucket.
class Histogram {
 public:
  void Record(double value);

  long long Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/Max of recorded values; +/-inf when Count() == 0.
  double Min() const { return min_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; entry i counts values <= bounds()[i],
  /// the last entry counts the overflow.
  std::vector<long long> BucketCounts() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  const std::string name_;
  const std::vector<double> bounds_;
  std::vector<std::atomic<long long>> buckets_;
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Default histogram bucketing for latencies in microseconds (10us .. 1s).
const std::vector<double>& DefaultLatencyBoundsUs();

/// Point-in-time copy of every metric, taken under the registry mutex.
struct MetricsSnapshot {
  struct HistogramSnapshot {
    std::string name;
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> bounds;
    std::vector<long long> buckets;

    /// Quantile estimate (q in [0, 1]) by linear interpolation within the
    /// bucket holding rank q*count. 0.0 for an empty histogram; q <= 0 gives
    /// min and q >= 1 gives max; results are clamped to [min, max] (the
    /// overflow bucket interpolates between the last bound and max).
    /// Defined in util/metrics_export.cc.
    double Quantile(double q) const;
  };
  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  void WriteJson(JsonWriter& writer) const;
  std::string ToJson() const;
};

/// Process-global registry of named metrics. Lookup/creation takes a mutex;
/// the returned pointers are stable for the process lifetime (metrics are
/// never deleted, Reset only zeroes values), so hot paths cache them in
/// function-local statics — see the OF_COUNTER_* macros below.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Find-or-create. A name used with two different metric kinds yields two
  /// distinct metrics (kinds live in separate namespaces).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first creation; must be strictly ascending.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = DefaultLatencyBoundsUs());

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric value (pointers stay valid).
  void ResetAll();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

/// Records the elapsed time since construction into `histogram` (in
/// microseconds) when destroyed. A null histogram disables the timer and
/// skips the clock calls entirely.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatencyTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace omnifair

// ---------------------------------------------------------------------------
// Instrumentation macros. `name` must be a string literal (the metric pointer
// is cached in a function-local static). All of them are no-ops below
// TelemetryLevel::kCounters: one thread-local read on the hot path.
// ---------------------------------------------------------------------------

#define OF_TELEMETRY_CONCAT_INNER(a, b) a##b
#define OF_TELEMETRY_CONCAT(a, b) OF_TELEMETRY_CONCAT_INNER(a, b)

#define OF_COUNTER_ADD(name, delta)                                           \
  do {                                                                        \
    if (::omnifair::EffectiveTelemetryLevel() >=                              \
        ::omnifair::TelemetryLevel::kCounters) {                              \
      static ::omnifair::Counter* of_counter =                                \
          ::omnifair::MetricsRegistry::Global().GetCounter(name);             \
      of_counter->Add(delta);                                                 \
    }                                                                         \
  } while (0)

#define OF_COUNTER_INC(name) OF_COUNTER_ADD(name, 1)

#define OF_GAUGE_SET(name, value)                                             \
  do {                                                                        \
    if (::omnifair::EffectiveTelemetryLevel() >=                              \
        ::omnifair::TelemetryLevel::kCounters) {                              \
      static ::omnifair::Gauge* of_gauge =                                    \
          ::omnifair::MetricsRegistry::Global().GetGauge(name);               \
      of_gauge->Set(value);                                                   \
    }                                                                         \
  } while (0)

#define OF_HISTOGRAM_RECORD(name, value)                                      \
  do {                                                                        \
    if (::omnifair::EffectiveTelemetryLevel() >=                              \
        ::omnifair::TelemetryLevel::kCounters) {                              \
      static ::omnifair::Histogram* of_histogram =                            \
          ::omnifair::MetricsRegistry::Global().GetHistogram(name);           \
      of_histogram->Record(value);                                            \
    }                                                                         \
  } while (0)

/// Scoped timer recording into a latency histogram (microseconds). Below
/// kCounters the timer is constructed disabled and makes no clock calls.
/// The histogram pointer is resolved once per call site (one mutex'd lookup
/// at first execution, regardless of level — registration is not overhead).
#define OF_SCOPED_LATENCY_US(name)                                            \
  static ::omnifair::Histogram* OF_TELEMETRY_CONCAT(of_hist_, __LINE__) =     \
      ::omnifair::MetricsRegistry::Global().GetHistogram(name);               \
  ::omnifair::ScopedLatencyTimer OF_TELEMETRY_CONCAT(of_latency_, __LINE__)(  \
      ::omnifair::EffectiveTelemetryLevel() >=                                \
              ::omnifair::TelemetryLevel::kCounters                           \
          ? OF_TELEMETRY_CONCAT(of_hist_, __LINE__)                           \
          : nullptr)

#endif  // OMNIFAIR_UTIL_TELEMETRY_H_
