#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/vector_ops.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {
namespace {

/// Builds one regression tree on (grad, hess) and returns the node array.
class GbdtTreeBuilder {
 public:
  GbdtTreeBuilder(const Matrix& X, const std::vector<double>& grad,
                  const std::vector<double>& hess, const GbdtOptions& options)
      : X_(X), grad_(grad), hess_(hess), options_(options) {}

  std::vector<GbdtTreeNode> Build() {
    std::vector<size_t> all(X_.rows());
    std::iota(all.begin(), all.end(), 0);
    BuildNode(std::move(all), 0);
    return std::move(nodes_);
  }

 private:
  double LeafValue(double g, double h) const {
    return -g / (h + options_.reg_lambda);
  }

  double ScoreHalf(double g, double h) const {
    return g * g / (h + options_.reg_lambda);
  }

  int BuildNode(std::vector<size_t> samples, int depth) {
    double g_total = 0.0;
    double h_total = 0.0;
    for (size_t i : samples) {
      g_total += grad_[i];
      h_total += hess_[i];
    }

    const int node_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_index].value = LeafValue(g_total, h_total);

    if (depth >= options_.max_depth || samples.size() < 2 ||
        h_total < 2.0 * options_.min_child_weight) {
      return node_index;
    }

    // Exact greedy split: per feature, sort and scan.
    bool found = false;
    size_t best_feature = 0;
    double best_threshold = 0.0;
    double best_gain = options_.min_split_gain;
    std::vector<size_t> order(samples);
    const double parent_score = ScoreHalf(g_total, h_total);
    for (size_t feature = 0; feature < X_.cols(); ++feature) {
      std::sort(order.begin(), order.end(), [this, feature](size_t a, size_t b) {
        return X_(a, feature) < X_(b, feature);
      });
      double g_left = 0.0;
      double h_left = 0.0;
      for (size_t k = 0; k + 1 < order.size(); ++k) {
        const size_t i = order[k];
        g_left += grad_[i];
        h_left += hess_[i];
        const double value = X_(i, feature);
        const double next_value = X_(order[k + 1], feature);
        if (next_value <= value) continue;
        const double h_right = h_total - h_left;
        if (h_left < options_.min_child_weight || h_right < options_.min_child_weight) {
          continue;
        }
        const double g_right = g_total - g_left;
        const double gain =
            0.5 * (ScoreHalf(g_left, h_left) + ScoreHalf(g_right, h_right) -
                   parent_score);
        if (gain > best_gain + 1e-12) {
          found = true;
          best_feature = feature;
          best_threshold = 0.5 * (value + next_value);
          best_gain = gain;
        }
      }
    }
    if (!found) return node_index;

    std::vector<size_t> left_samples;
    std::vector<size_t> right_samples;
    for (size_t i : samples) {
      (X_(i, best_feature) <= best_threshold ? left_samples : right_samples)
          .push_back(i);
    }
    if (left_samples.empty() || right_samples.empty()) return node_index;
    samples.clear();
    samples.shrink_to_fit();

    const int left = BuildNode(std::move(left_samples), depth + 1);
    const int right = BuildNode(std::move(right_samples), depth + 1);
    nodes_[node_index].is_leaf = false;
    nodes_[node_index].feature = static_cast<int>(best_feature);
    nodes_[node_index].threshold = best_threshold;
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  const Matrix& X_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
  const GbdtOptions& options_;
  std::vector<GbdtTreeNode> nodes_;
};

double PredictTree(const std::vector<GbdtTreeNode>& nodes, const double* row) {
  int index = 0;
  while (!nodes[index].is_leaf) {
    index = row[nodes[index].feature] <= nodes[index].threshold ? nodes[index].left
                                                                : nodes[index].right;
  }
  return nodes[index].value;
}

}  // namespace

GbdtModel::GbdtModel(std::vector<std::vector<GbdtTreeNode>> trees, double base_score,
                     double learning_rate)
    : trees_(std::move(trees)), base_score_(base_score), learning_rate_(learning_rate) {}

std::vector<double> GbdtModel::PredictRaw(const Matrix& X) const {
  std::vector<double> raw(X.rows(), base_score_);
  for (const auto& tree : trees_) {
    for (size_t i = 0; i < X.rows(); ++i) {
      raw[i] += learning_rate_ * PredictTree(tree, X.Row(i));
    }
  }
  return raw;
}

std::vector<double> GbdtModel::PredictProba(const Matrix& X) const {
  std::vector<double> proba = PredictRaw(X);
  for (double& p : proba) p = Sigmoid(p);
  return proba;
}

GbdtTrainer::GbdtTrainer(GbdtOptions options) : options_(options) {}

std::unique_ptr<Classifier> GbdtTrainer::Fit(const Matrix& X,
                                             const std::vector<int>& y,
                                             const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  OF_TRACE_SPAN("fit/xgb");
  OF_SCOPED_LATENCY_US("ml.fit_us.xgb");
  const size_t n = X.rows();

  // Base score: weighted log-odds of the positive class.
  double w_pos = 0.0;
  double w_total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    w_total += weights[i];
    if (y[i] == 1) w_pos += weights[i];
  }
  double prior = w_total > 0.0 ? w_pos / w_total : 0.5;
  prior = std::clamp(prior, 1e-6, 1.0 - 1e-6);
  const double base_score = std::log(prior / (1.0 - prior));

  std::vector<double> raw(n, base_score);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  std::vector<std::vector<GbdtTreeNode>> trees;
  trees.reserve(options_.num_rounds);

  // Divergence recovery (DESIGN.md §8): a round whose tree makes any raw
  // score non-finite is dropped, and later trees have their leaf values
  // damped by `backoff`. `raw` therefore only ever holds finite scores.
  std::vector<double> candidate_raw(n);
  double backoff = 1.0;
  int retries = 0;
  for (int round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(raw[i]);
      grad[i] = weights[i] * (p - (y[i] == 1 ? 1.0 : 0.0));
      hess[i] = weights[i] * std::max(p * (1.0 - p), 1e-12);
    }
    GbdtTreeBuilder builder(X, grad, hess, options_);
    std::vector<GbdtTreeNode> tree = builder.Build();
    if (backoff < 1.0) {
      for (GbdtTreeNode& node : tree) node.value *= backoff;
    }
    bool diverged = FaultInjector::ShouldFail(fault_sites::kGbdtRound);
    candidate_raw = raw;
    for (size_t i = 0; i < n; ++i) {
      candidate_raw[i] += options_.learning_rate * PredictTree(tree, X.Row(i));
      diverged = diverged || !std::isfinite(candidate_raw[i]);
    }
    if (diverged) {
      if (retries >= options_.max_divergence_retries) {
        OF_LOG(Warning) << "gbdt: divergence persisted after " << retries
                        << " retries; stopping with " << trees.size() << " trees";
        break;
      }
      ++retries;
      CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
      OF_LOG(Warning) << "gbdt: non-finite raw score at round " << round
                      << "; dropping tree and damping (retry " << retries << ")";
      backoff *= 0.5;
      continue;
    }
    raw.swap(candidate_raw);
    trees.push_back(std::move(tree));
  }
  return std::make_unique<GbdtModel>(std::move(trees), base_score,
                                     options_.learning_rate);
}

}  // namespace omnifair
