// Multi-constraint lending scenario: several simultaneous fairness
// specifications, including an intersectional grouping (§4.3 of the
// paper), on the Adult income dataset used as a credit-scoring proxy.
//
// The example makes two points:
//   1. Feasibility is a real question (paper §6): statistical parity and
//      FNR parity across sexes are mutually exclusive at tight budgets
//      when base rates differ (Kleinberg et al.'s impossibility) — the
//      system reports this instead of silently shipping an unfair model.
//   2. With a feasible budget, OmniFair enforces three heterogeneous
//      specifications at once — SP across sexes, FNR parity at a budget
//      compatible with the base-rate gap, and misclassification-rate
//      parity across race x sex intersections — with zero extra code.

#include <cmath>
#include <cstdio>

#include "core/omnifair.h"
#include "data/datasets.h"
#include "data/split.h"
#include "ml/trainer_registry.h"

namespace {

using namespace omnifair;

void Report(const char* title, const Result<FairModel>& fair,
            const std::vector<FairnessSpec>& specs, const Dataset& test) {
  std::printf("\n%s\n", title);
  if (!fair.ok()) {
    std::printf("  failed: %s\n", fair.status().ToString().c_str());
    return;
  }
  std::printf("  satisfied on validation: %s | validation accuracy: %.1f%%\n",
              fair->satisfied ? "yes" : "NO (infeasible at this budget)",
              100.0 * fair->val_accuracy);
  auto audit = Audit(*fair->model, fair->encoder, test, specs);
  if (!audit.ok()) return;
  std::printf("  test accuracy: %.1f%% — per-constraint test disparities:\n",
              100.0 * audit->accuracy);
  for (size_t j = 0; j < audit->constraint_labels.size(); ++j) {
    std::printf("    %-40s %.3f\n", audit->constraint_labels[j].c_str(),
                std::fabs(audit->fairness_parts[j]));
  }
}

}  // namespace

int main() {
  SyntheticOptions options;
  options.num_rows = 5000;
  const Dataset dataset = MakeAdultDataset(options);
  const TrainValTestSplit split = SplitDefault(dataset, 21);

  const GroupingFunction sexes = GroupByAttributeValues("sex", {"Male", "Female"});
  // Intersectional constraint over the two largest race groups so every
  // intersection keeps a meaningful sample size.
  const GroupingFunction intersections = GroupByPredicates({
      {"White|Male",
       [](const Dataset& d, size_t i) {
         return d.ColumnByName("race").CategoryOf(i) == "White" &&
                d.ColumnByName("sex").CategoryOf(i) == "Male";
       }},
      {"White|Female",
       [](const Dataset& d, size_t i) {
         return d.ColumnByName("race").CategoryOf(i) == "White" &&
                d.ColumnByName("sex").CategoryOf(i) == "Female";
       }},
      {"Black|Male",
       [](const Dataset& d, size_t i) {
         return d.ColumnByName("race").CategoryOf(i) == "Black" &&
                d.ColumnByName("sex").CategoryOf(i) == "Male";
       }},
      {"Black|Female",
       [](const Dataset& d, size_t i) {
         return d.ColumnByName("race").CategoryOf(i) == "Black" &&
                d.ColumnByName("sex").CategoryOf(i) == "Female";
       }},
  });

  auto trainer = MakeTrainer("lr");

  // --- Attempt 1: an infeasible budget --------------------------------------
  // P(income>50k | Male) ~ 0.30 vs 0.11 for women in this data: equalizing
  // approval rates (SP <= 0.03) forces unequal miss rates, so FNR <= 0.05
  // cannot hold simultaneously. Cap the hill climb so the demo fails fast.
  {
    OmniFairOptions capped;
    capped.hill_climb.max_iterations_factor = 2;
    OmniFair omnifair(capped);
    const std::vector<FairnessSpec> tight = {MakeSpec(sexes, "sp", 0.03),
                                             MakeSpec(sexes, "fnr", 0.05)};
    auto fair = omnifair.Train(split.train, split.val, trainer.get(), tight);
    Report("[attempt 1] SP <= 0.03 AND FNR <= 0.05 across sexes:", fair, tight,
           split.test);
    std::printf(
        "  (expected: infeasible — base rates differ, so parity of approval\n"
        "   rates and parity of miss rates conflict; Kleinberg et al. 2016)\n");
  }

  // --- Attempt 2: a feasible policy ------------------------------------------
  const std::vector<FairnessSpec> policy = {
      MakeSpec(sexes, "sp", 0.05),
      MakeSpec(sexes, "fnr", 0.25),        // compatible with the base-rate gap
      MakeSpec(intersections, "mr", 0.10),  // C(4,2) = 6 pairwise constraints
  };
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, trainer.get(), policy);
  Report("[attempt 2] SP(0.05) + FNR(0.25) + intersectional MR(0.10):", fair,
         policy, split.test);
  if (fair.ok()) {
    std::printf("  constraints induced: %zu, model fits: %d, time: %.1fs\n",
                fair->lambdas.size(), fair->models_trained, fair->train_seconds);
  }
  return 0;
}
