#include "core/checkpoint.h"

#include <utility>

#include "core/problem.h"
#include "ml/serialization.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace omnifair {
namespace {

/// Checkpoint files are snapshot containers (util/snapshot_io) with these
/// sections. Bump the version when the record layout changes.
constexpr uint32_t kCheckpointVersion = 1;
constexpr char kMetaSection[] = "meta";
constexpr char kFitsSection[] = "fits";

std::string FormatLambdas(const std::vector<double>& lambdas) {
  std::string out = "(";
  for (size_t i = 0; i < lambdas.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(lambdas[i]);
  }
  return out + ")";
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointOptions options,
                                     std::string algorithm)
    : options_(std::move(options)), algorithm_(std::move(algorithm)) {}

Result<std::unique_ptr<CheckpointManager>> CheckpointManager::Create(
    const CheckpointOptions& options, const std::string& algorithm) {
  auto manager = std::unique_ptr<CheckpointManager>(
      new CheckpointManager(options, algorithm));
  if (options.resume_from.empty()) return manager;

  Result<Snapshot> snapshot =
      ReadSnapshotFile(options.resume_from, kCheckpointVersion);
  if (!snapshot.ok()) {
    if (snapshot.status().code() == StatusCode::kDataLoss) {
      OF_COUNTER_INC("checkpoint.corrupt_detected");
    }
    return snapshot.status();
  }

  const SnapshotSection* meta = snapshot->Find(kMetaSection);
  const SnapshotSection* fits = snapshot->Find(kFitsSection);
  if (meta == nullptr || fits == nullptr) {
    return Status::InvalidArgument("checkpoint " + options.resume_from +
                                   " is missing its meta/fits sections");
  }

  std::string recorded_algorithm;
  uint64_t record_count = 0;
  {
    BinaryReader reader(meta->payload);
    if (!reader.String(&recorded_algorithm) || !reader.U64(&record_count)) {
      return reader.status();
    }
  }
  if (recorded_algorithm != algorithm) {
    return Status::InvalidArgument(
        "checkpoint " + options.resume_from + " was written by tuner '" +
        recorded_algorithm + "'; cannot resume it with '" + algorithm + "'");
  }

  BinaryReader reader(fits->payload);
  manager->records_.reserve(static_cast<size_t>(record_count));
  for (uint64_t i = 0; i < record_count; ++i) {
    FitRecord record;
    uint8_t fit_ok = 0;
    if (!reader.F64Vector(&record.lambdas) || !reader.U8(&fit_ok) ||
        !reader.U8(&record.status_code) ||
        !reader.String(&record.status_message) || !reader.F64(&record.seconds) ||
        !reader.Bytes(&record.model_blob)) {
      OF_COUNTER_INC("checkpoint.corrupt_detected");
      return reader.status();
    }
    record.fit_ok = fit_ok != 0;
    manager->records_.push_back(std::move(record));
  }
  if (!reader.exhausted()) {
    OF_COUNTER_INC("checkpoint.corrupt_detected");
    return Status::DataLoss("checkpoint " + options.resume_from + " has " +
                            std::to_string(reader.remaining()) +
                            " trailing bytes after " +
                            std::to_string(record_count) + " fit records");
  }
  manager->replay_limit_ = manager->records_.size();
  if (!manager->records_.empty()) {
    manager->consumed_seconds_ = manager->records_.back().seconds;
  }
  OF_COUNTER_INC("checkpoint.resumes");
  OF_LOG(Info) << "resuming tuning run from " << options.resume_from << ": "
               << manager->records_.size() << " recorded fits, "
               << manager->consumed_seconds_ << "s of tune time consumed";
  return manager;
}

Result<const FitRecord*> CheckpointManager::NextReplay(
    const std::vector<double>& lambdas) {
  OF_CHECK(HasPendingReplay());
  const FitRecord& record = records_[replay_next_];
  if (record.lambdas != lambdas) {
    return Status::InvalidArgument(
        "checkpoint replay diverged at fit " + std::to_string(replay_next_) +
        ": recorded lambdas " + FormatLambdas(record.lambdas) +
        " but the search requested " + FormatLambdas(lambdas) +
        " — were the tuner options changed between runs?");
  }
  ++replay_next_;
  OF_COUNTER_INC("checkpoint.replayed_fits");
  return &record;
}

void CheckpointManager::RecordFit(const std::vector<double>& lambdas,
                                  bool fit_ok, const Status& fit_status,
                                  double seconds, const Classifier* model) {
  std::vector<uint8_t> blob;
  if (fit_ok && model != nullptr) {
    Result<std::vector<uint8_t>> serialized = SerializeModelBinary(*model);
    if (!serialized.ok()) {
      if (!recording_broken_) {
        recording_broken_ = true;
        OF_LOG(Warning) << "checkpoint recording stopped: "
                        << serialized.status()
                        << " (the log stays a valid prefix of the run)";
      }
      return;
    }
    blob = std::move(*serialized);
  }
  RecordFitBlob(lambdas, fit_ok, fit_status, seconds, std::move(blob));
}

void CheckpointManager::RecordFitBlob(std::vector<double> lambdas, bool fit_ok,
                                      const Status& fit_status, double seconds,
                                      std::vector<uint8_t> model_blob) {
  if (recording_broken_ || crashed_) return;
  if (fit_ok && model_blob.empty()) {
    // A parallel worker could not serialize its model; same degradation as
    // RecordFit.
    recording_broken_ = true;
    OF_LOG(Warning) << "checkpoint recording stopped: fit has no model blob";
    return;
  }
  FitRecord record;
  record.lambdas = std::move(lambdas);
  record.fit_ok = fit_ok;
  if (!fit_ok) {
    record.status_code = static_cast<uint8_t>(fit_status.code());
    record.status_message = fit_status.message();
  }
  record.seconds = seconds;
  record.model_blob = std::move(model_blob);
  records_.push_back(std::move(record));
}

void CheckpointManager::MaybeWrite(bool force) {
  if (options_.path.empty() || crashed_ || recording_broken_) return;
  if (!force && wrote_once_ &&
      since_write_.ElapsedSeconds() < options_.interval_s) {
    return;
  }

  Snapshot snapshot;
  snapshot.version = kCheckpointVersion;
  {
    BinaryWriter meta;
    meta.String(algorithm_);
    meta.U64(records_.size());
    snapshot.sections.push_back({kMetaSection, meta.TakeBuffer()});
  }
  {
    BinaryWriter fits;
    for (const FitRecord& record : records_) {
      fits.F64Vector(record.lambdas);
      fits.U8(record.fit_ok ? 1 : 0);
      fits.U8(record.status_code);
      fits.String(record.status_message);
      fits.F64(record.seconds);
      fits.Bytes(record.model_blob);
    }
    snapshot.sections.push_back({kFitsSection, fits.TakeBuffer()});
  }

  Status status;
  {
    OF_SCOPED_LATENCY_US("checkpoint.write_us");
    status = WriteSnapshotFile(options_.path, snapshot);
  }
  if (!status.ok()) {
    // Degrade, do not derail: a full disk must not kill a tuning run that
    // can finish in memory. The run just loses resumability from here on.
    OF_COUNTER_INC("checkpoint.write_failures");
    OF_LOG(Warning) << "checkpoint write failed (run continues): " << status;
    last_write_status_ = std::move(status);
    return;
  }
  last_write_status_ = Status::Ok();
  wrote_once_ = true;
  since_write_.Restart();
  OF_COUNTER_INC("checkpoint.writes");
  OF_COUNTER_ADD("checkpoint.bytes",
                 static_cast<long long>(20 + 8 + algorithm_.size() +
                                        snapshot.sections[1].payload.size()));

  if (FaultInjector::ShouldFail(fault_sites::kCheckpointCrashAfterWrite)) {
    crashed_ = true;
    OF_LOG(Warning) << "simulated crash after checkpoint write to "
                    << options_.path;
  }
}

Status CheckpointManager::CrashStatus() const {
  return Status::Unavailable(
      "tuning run interrupted after a checkpoint write (simulated crash); "
      "resume from " +
      options_.path);
}

Result<std::unique_ptr<CheckpointManager>> AttachCheckpoint(
    FairnessProblem& problem, const CheckpointOptions& options,
    const std::string& algorithm) {
  if ((options.path.empty() && options.resume_from.empty()) ||
      problem.checkpoint() != nullptr) {
    return std::unique_ptr<CheckpointManager>();
  }
  Result<std::unique_ptr<CheckpointManager>> manager =
      CheckpointManager::Create(options, algorithm);
  if (!manager.ok()) return manager.status();
  if ((*manager)->consumed_seconds() > 0.0) {
    if (problem.budget() != nullptr) {
      problem.budget()->RestoreConsumed((*manager)->consumed_seconds());
    }
    problem.SetTuneSecondsBase((*manager)->consumed_seconds());
  }
  problem.SetCheckpoint(manager->get());
  return manager;
}

void FinishCheckpoint(FairnessProblem& problem, CheckpointManager* checkpoint) {
  if (checkpoint == nullptr) return;
  checkpoint->MaybeWrite(/*force=*/true);
  problem.SetCheckpoint(nullptr);
  problem.SetTuneSecondsBase(0.0);
}

}  // namespace omnifair
