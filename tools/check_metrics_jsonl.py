#!/usr/bin/env python3
"""Validate omnifair.metrics JSONL files written by MetricsExporter.

Usage: check_metrics_jsonl.py FILE [FILE...]

Every line must be an omnifair.metrics schema_version-1 document:

  {"schema":"omnifair.metrics","schema_version":1,"seq":N,"uptime_ms":U,
   "interval_ms":I,"final":B,"cumulative":{counters,gauges,histograms},
   "delta":{"counters":{name:inc},"histograms":{name:{count,sum}}},
   "quantiles":{name:{"p50":..,"p90":..,"p99":..}}}

The exporter appends, so one file may hold several runs back to back; a line
with seq == 1 starts a new run. Within each run this checks that seq counts
up by one, uptime_ms never decreases, cumulative counters never decrease,
delta counter/histogram-count increments are positive (zero-change metrics
are omitted), quantiles are ordered p50 <= p90 <= p99 and only present for
histograms with observations, and exactly the last line of the run is marked
"final": true. The cumulative block is validated with the same
check_bench_json.check_metrics used for bench documents.

Exits 1 (listing every problem) when any file is invalid, 2 on usage errors.
Standard library only, so it runs anywhere ctest does.
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_json  # noqa: E402

SCHEMA_NAME = "omnifair.metrics"
SCHEMA_VERSION = 1


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def check_delta(delta, where, errors):
    if not isinstance(delta, dict):
        errors.append(f"{where}: 'delta' is not an object")
        return
    counters = delta.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{where}.delta: missing 'counters' object")
    else:
        for name, inc in counters.items():
            if not is_int(inc) or inc <= 0:
                errors.append(
                    f"{where}.delta.counters[{name!r}]: increment {inc!r} "
                    "is not a positive integer (counters are monotonic and "
                    "zero-change entries are omitted)")
    histograms = delta.get("histograms")
    if not isinstance(histograms, dict):
        errors.append(f"{where}.delta: missing 'histograms' object")
        return
    for name, inc in histograms.items():
        hwhere = f"{where}.delta.histograms[{name!r}]"
        if not isinstance(inc, dict):
            errors.append(f"{hwhere}: not an object")
            continue
        if not is_int(inc.get("count")) or inc["count"] <= 0:
            errors.append(f"{hwhere}: 'count' is not a positive integer")
        if not is_number(inc.get("sum")):
            errors.append(f"{hwhere}: 'sum' is not a number")


def check_quantiles(quantiles, cumulative, where, errors):
    if not isinstance(quantiles, dict):
        errors.append(f"{where}: 'quantiles' is not an object")
        return
    hist_counts = {}
    histograms = cumulative.get("histograms") if isinstance(
        cumulative, dict) else None
    if isinstance(histograms, dict):
        for name, hist in histograms.items():
            if isinstance(hist, dict) and is_int(hist.get("count")):
                hist_counts[name] = hist["count"]
    for name, q in quantiles.items():
        qwhere = f"{where}.quantiles[{name!r}]"
        if hist_counts.get(name, 0) <= 0:
            errors.append(
                f"{qwhere}: quantiles for a histogram with no observations")
        if not isinstance(q, dict):
            errors.append(f"{qwhere}: not an object")
            continue
        values = []
        for key in ("p50", "p90", "p99"):
            if not is_number(q.get(key)):
                errors.append(f"{qwhere}: '{key}' is not a number")
            else:
                values.append(q[key])
        if len(values) == 3 and not values[0] <= values[1] <= values[2]:
            errors.append(f"{qwhere}: not ordered p50 <= p90 <= p99: {values}")


def check_line(doc, where, errors):
    """Structural checks on one line; run-level invariants live in check_file."""
    if doc.get("schema") != SCHEMA_NAME:
        errors.append(f"{where}: schema is {doc.get('schema')!r}, "
                      f"expected {SCHEMA_NAME!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"{where}: unsupported schema_version {doc.get('schema_version')!r}")
    if not is_int(doc.get("seq")) or doc["seq"] < 1:
        errors.append(f"{where}: 'seq' is not a positive integer")
    if not is_number(doc.get("uptime_ms")) or doc["uptime_ms"] < 0:
        errors.append(f"{where}: 'uptime_ms' is not a non-negative number")
    if not is_int(doc.get("interval_ms")) or doc["interval_ms"] <= 0:
        errors.append(f"{where}: 'interval_ms' is not a positive integer")
    if not isinstance(doc.get("final"), bool):
        errors.append(f"{where}: 'final' is not a boolean")
    cumulative = doc.get("cumulative")
    if not isinstance(cumulative, dict):
        errors.append(f"{where}: 'cumulative' is not an object")
    else:
        check_bench_json.check_metrics(cumulative, f"{where}.cumulative",
                                       errors)
    check_delta(doc.get("delta"), where, errors)
    check_quantiles(doc.get("quantiles"), cumulative, where, errors)


def cumulative_counters(doc):
    counters = doc.get("cumulative", {})
    counters = counters.get("counters") if isinstance(counters, dict) else None
    return counters if isinstance(counters, dict) else {}


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw_lines = handle.readlines()
    except OSError as error:
        return [f"cannot read: {error}"]
    lines = []
    errors = []
    for lineno, raw in enumerate(raw_lines, start=1):
        if not raw.strip():
            errors.append(f"line {lineno}: blank line")
            continue
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as error:
            errors.append(f"line {lineno}: cannot parse: {error}")
            continue
        if not isinstance(doc, dict):
            errors.append(f"line {lineno}: not an object")
            continue
        lines.append((lineno, doc))
    if not lines:
        errors.append("no snapshot lines")
        return errors

    for lineno, doc in lines:
        check_line(doc, f"line {lineno}", errors)

    # Run-level invariants. Append mode means a file can hold several runs;
    # seq == 1 opens a new run.
    prev = None
    for index, (lineno, doc) in enumerate(lines):
        seq = doc.get("seq")
        if not is_int(seq):
            prev = None
            continue
        starts_run = seq == 1
        if prev is None and not starts_run:
            errors.append(f"line {lineno}: run starts at seq {seq}, expected 1")
        if prev is not None and not starts_run:
            prev_lineno, prev_doc = prev
            if seq != prev_doc["seq"] + 1:
                errors.append(f"line {lineno}: seq {seq} does not follow "
                              f"{prev_doc['seq']} (line {prev_lineno})")
            if prev_doc.get("final") is True:
                errors.append(f"line {prev_lineno}: marked final but the run "
                              f"continues on line {lineno}")
            if (is_number(doc.get("uptime_ms"))
                    and is_number(prev_doc.get("uptime_ms"))
                    and doc["uptime_ms"] < prev_doc["uptime_ms"]):
                errors.append(f"line {lineno}: uptime_ms went backwards")
            prev_counters = cumulative_counters(prev_doc)
            for name, value in cumulative_counters(doc).items():
                before = prev_counters.get(name)
                if is_int(value) and is_int(before) and value < before:
                    errors.append(
                        f"line {lineno}: cumulative counter {name!r} "
                        f"decreased {before} -> {value}")
        is_last = index + 1 == len(lines)
        next_starts_run = (not is_last
                           and lines[index + 1][1].get("seq") == 1)
        if (is_last or next_starts_run) and doc.get("final") is not True:
            errors.append(f"line {lineno}: last line of a run is not marked "
                          '"final": true (unclean shutdown?)')
        prev = (lineno, doc)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            print(f"INVALID {path}")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"ok      {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
