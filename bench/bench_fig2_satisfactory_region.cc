// Reproduces Figure 2: satisfactory regions for two SP constraints on
// COMPAS with three demographic groups (African-American vs Caucasian, and
// African-American vs Hispanic). For each Lambda on a 2-D grid we train a
// model and report both fairness parts; the printed grid shows which
// Lambdas satisfy constraint 1 ('1'), constraint 2 ('2'), both ('B') or
// neither ('.'). The paper's zero-satisfactory lines are the boundaries of
// the '1'/'2' bands; the 'B' cells are the feasible intersection.

#include <cmath>

#include "bench/bench_common.h"

#include "core/problem.h"

namespace omnifair {
namespace bench {
namespace {

void Run(BenchReporter& reporter) {
  PrintHeader("Figure 2: satisfactory regions (COMPAS, two SP constraints, LR)");
  const double epsilon = 0.05;
  reporter.Config("dataset", "compas");
  reporter.Config("metric", "sp");
  reporter.Config("epsilon", epsilon);

  SyntheticOptions data_options;
  data_options.num_rows = 2 * DefaultRows("compas");
  data_options.seed = 900;
  const Dataset data = MakeCompasDataset(data_options);
  const TrainValTestSplit split = SplitDefault(data, 1000);
  // Two specs -> two pairwise constraints with AA as the common group.
  const std::vector<FairnessSpec> specs = {
      MakeSpec(GroupByAttributeValues("race", {"African-American", "Caucasian"}),
               "sp", epsilon),
      MakeSpec(GroupByAttributeValues("race", {"African-American", "Hispanic"}),
               "sp", epsilon),
  };
  auto trainer = MakeTrainer("lr");
  auto problem = FairnessProblem::Create(split.train, split.val, specs, trainer.get());
  if (!problem.ok()) {
    std::printf("setup failed: %s\n", problem.status().ToString().c_str());
    return;
  }

  const int grid = 15;
  const double lo = -0.28;
  const double hi = 0.07;
  std::printf("lambda1 (AA vs Caucasian) on rows, lambda2 (AA vs Hispanic) on cols\n");
  std::printf("legend: B = both satisfied, 1/2 = that constraint only, . = neither\n\n");
  std::printf("%8s", "");
  for (int c = 0; c < grid; ++c) {
    std::printf(" %6.2f", lo + (hi - lo) * c / (grid - 1));
  }
  std::printf("\n");

  for (int r = 0; r < grid; ++r) {
    const double lambda1 = lo + (hi - lo) * r / (grid - 1);
    std::printf("%8.2f", lambda1);
    for (int c = 0; c < grid; ++c) {
      const double lambda2 = lo + (hi - lo) * c / (grid - 1);
      auto model = (*problem)->FitWithLambdas({lambda1, lambda2}, nullptr);
      const std::vector<int> preds = (*problem)->PredictVal(*model);
      const std::vector<double> fps = (*problem)->val_evaluator().FairnessParts(preds);
      const bool sat1 = std::fabs(fps[0]) <= epsilon;
      const bool sat2 = std::fabs(fps[1]) <= epsilon;
      const char mark = sat1 && sat2 ? 'B' : (sat1 ? '1' : (sat2 ? '2' : '.'));
      std::printf(" %6c", mark);
      reporter.AddRow("satisfactory_region")
          .Value("lambda1", lambda1)
          .Value("lambda2", lambda2)
          .Value("fp1", fps[0])
          .Value("fp2", fps[1])
          .Value("satisfied", sat1 && sat2 ? 1.0 : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\nmodels trained: %d\n", (*problem)->models_trained());
  reporter.AddRow("summary").Value("models_trained",
                                   (*problem)->models_trained());
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "fig2_satisfactory_region",
      "Figure 2: satisfactory regions (COMPAS, two SP constraints, LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
