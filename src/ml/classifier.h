#ifndef OMNIFAIR_ML_CLASSIFIER_H_
#define OMNIFAIR_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace omnifair {

/// Learning-rate schedule for the mini-batch SGD paths (batch_size > 0 in the
/// LR / MLP trainer options). Full-batch training ignores it.
enum class LrSchedule {
  /// step = learning_rate for every batch.
  kConstant,
  /// step = learning_rate / sqrt(t) where t is the global 1-based batch
  /// counter — the classic Robbins-Monro decay that keeps late batches from
  /// undoing converged coefficients on multi-epoch runs.
  kInvSqrt,
};

/// A trained binary classifier h_theta. Immutable once produced by a Trainer.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// P(y = 1 | x) for each row of X.
  virtual std::vector<double> PredictProba(const Matrix& X) const = 0;

  /// Hard 0/1 predictions; the default thresholds PredictProba at 0.5.
  virtual std::vector<int> Predict(const Matrix& X) const;

  /// Adds P(y = 1 | x) for rows [row_begin, row_end) of X into
  /// proba[row_begin..row_end). The default computes PredictProba over all of
  /// X and adds the slice; models with cheap per-row prediction override it
  /// to skip the temporary (the random forest accumulates every tree straight
  /// into the caller's buffer).
  virtual void AccumulateProba(const Matrix& X, size_t row_begin,
                               size_t row_end, std::vector<double>& proba) const;

  /// Model family name ("logistic_regression", "random_forest", ...).
  virtual std::string Name() const = 0;
};

/// An ML training algorithm "A" in the paper's notation: a black box that
/// maximizes (weighted) accuracy. This is the only interface OmniFair needs
/// from a model family — the per-example `weights` argument is exactly the
/// `sample_weight` hook the paper relies on in scikit-learn (§1, point 2).
///
/// Weights must be non-negative (OmniFair clips the Lagrangian weights at
/// zero before calling Fit; see core/weights.h). Trainers are stateful only
/// for warm starts: calling Fit repeatedly with warm start enabled reuses the
/// previous solution as initialization (paper §7.2.1, Table 6).
class Trainer {
 public:
  virtual ~Trainer() = default;

  /// Trains on (X, y) with per-example weights (same length as y).
  virtual std::unique_ptr<Classifier> Fit(const Matrix& X,
                                          const std::vector<int>& y,
                                          const std::vector<double>& weights) = 0;

  /// Convenience: unit weights.
  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y);

  virtual std::string Name() const = 0;

  /// A fresh trainer of the same family with the same hyperparameters and no
  /// warm-start state, safe to drive from another thread. Returns nullptr
  /// when the family does not support cloning; parallel tuners then fall
  /// back to the serial path.
  virtual std::unique_ptr<Trainer> Clone() const { return nullptr; }

  /// Whether this trainer can reuse the previous fit as initialization.
  virtual bool SupportsWarmStart() const { return false; }
  /// Enables/disables warm starting (no-op when unsupported).
  virtual void SetWarmStart(bool /*enabled*/) {}
  /// Drops any retained warm-start state.
  virtual void ResetWarmStart() {}
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_CLASSIFIER_H_
