#include "core/stream_tune.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/spec.h"
#include "core/weights.h"
#include "data/chunked_dataset.h"
#include "data/datasets.h"
#include "data/synthetic_stream.h"
#include "linalg/matrix.h"

namespace omnifair {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct HandBlock {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  std::vector<int> groups;
};

/// Writes a chunked dataset from hand-built blocks (group names "a", "b").
void WriteHandChunked(const std::string& path,
                      const std::vector<HandBlock>& blocks) {
  const size_t nf = blocks[0].features[0].size();
  Result<ChunkedDatasetWriter> writer =
      ChunkedDatasetWriter::Create(path, static_cast<uint32_t>(nf));
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (const HandBlock& hand : blocks) {
    DatasetBlock block;
    block.features = Matrix::Float32(hand.features.size(), nf);
    for (size_t r = 0; r < hand.features.size(); ++r) {
      for (size_t c = 0; c < nf; ++c) {
        block.features.Set(r, c, hand.features[r][c]);
      }
    }
    block.labels = hand.labels;
    block.groups = hand.groups;
    ASSERT_TRUE(writer->AppendBlock(block).ok());
  }
  ASSERT_TRUE(writer->Finalize("label", "grp", {"a", "b"}, "").ok());
}

/// The same rows as an in-memory Dataset (for WeightComputer parity).
Dataset HandDataset(const std::vector<HandBlock>& blocks) {
  Dataset dataset("hand");
  Column grp = Column::Categorical("grp", {"a", "b"});
  std::vector<int> labels;
  for (const HandBlock& hand : blocks) {
    for (size_t r = 0; r < hand.labels.size(); ++r) {
      grp.AppendCode(hand.groups[r]);
      labels.push_back(hand.labels[r]);
    }
  }
  dataset.AddColumn(std::move(grp));
  dataset.SetLabels(std::move(labels));
  return dataset;
}

/// Two all-train blocks (default val_block_period = 5 marks none of them
/// validation) with both groups and both labels represented.
std::vector<HandBlock> ParityBlocks() {
  return {
      {{{1.0}, {2.0}, {3.0}, {4.0}},
       {1, 0, 1, 0},
       {0, 0, 1, 1}},
      {{{5.0}, {6.0}, {7.0}},
       {1, 1, 0},
       {0, 1, 1}},
  };
}

TEST(StreamCoefficientTableTest, WeightsMatchInMemoryWeightComputer) {
  const std::vector<HandBlock> blocks = ParityBlocks();
  const std::string path = TempPath("parity.ofcd");
  WriteHandChunked(path, blocks);
  Result<ChunkedDataset> chunked = ChunkedDataset::Open(path);
  ASSERT_TRUE(chunked.ok()) << chunked.status();

  const Dataset train = HandDataset(blocks);
  const std::vector<MetricKind> metrics = {
      MetricKind::kStatisticalParity, MetricKind::kMisclassificationRate,
      MetricKind::kFalsePositiveRate, MetricKind::kFalseNegativeRate};
  for (MetricKind metric : metrics) {
    StreamTuneOptions options;
    options.metric = metric;
    Result<StreamCoefficientTable> table =
        BuildStreamCoefficientTable(*chunked, options);
    ASSERT_TRUE(table.ok()) << table.status();
    EXPECT_EQ(table->n_train, train.NumRows());

    // GroupByAttribute("grp") induces the single pairwise constraint
    // ("a", "b") — the same pair as stream group1=0, group2=1.
    Result<std::vector<ConstraintSpec>> constraints = InduceConstraints(
        MakeSpec(GroupByAttribute("grp"), metric, options.epsilon), train);
    ASSERT_TRUE(constraints.ok()) << constraints.status();
    ASSERT_EQ(constraints->size(), 1u);
    ASSERT_EQ((*constraints)[0].group1, "a");
    ASSERT_EQ((*constraints)[0].group2, "b");
    WeightComputer computer(*constraints, train);

    for (double lambda : {0.0, 0.3, -0.7, 2.5, -40.0}) {
      const std::vector<double> expected = computer.Compute(lambda, nullptr);
      ASSERT_EQ(expected.size(), train.NumRows());
      for (size_t i = 0; i < expected.size(); ++i) {
        const int g = train.ColumnByName("grp").Code(i);
        const double s = table->s[static_cast<size_t>(g)]
                                 [static_cast<size_t>(train.Label(i))];
        const double streamed = std::max(
            0.0, 1.0 + static_cast<double>(table->n_train) * lambda * s);
        EXPECT_DOUBLE_EQ(streamed, expected[i])
            << "metric " << static_cast<int>(metric) << " lambda " << lambda
            << " row " << i;
      }
    }
  }
}

TEST(StreamCoefficientTableTest, RejectsPredictionDependentMetrics) {
  const std::string path = TempPath("reject_for.ofcd");
  WriteHandChunked(path, ParityBlocks());
  Result<ChunkedDataset> chunked = ChunkedDataset::Open(path);
  ASSERT_TRUE(chunked.ok());
  for (MetricKind metric :
       {MetricKind::kFalseOmissionRate, MetricKind::kFalseDiscoveryRate}) {
    StreamTuneOptions options;
    options.metric = metric;
    Result<StreamCoefficientTable> table =
        BuildStreamCoefficientTable(*chunked, options);
    ASSERT_FALSE(table.ok());
    EXPECT_EQ(table.status().code(), StatusCode::kUnsupported);
  }
}

TEST(StreamCoefficientTableTest, RejectsBadGroupIndices) {
  const std::string path = TempPath("reject_groups.ofcd");
  WriteHandChunked(path, ParityBlocks());
  Result<ChunkedDataset> chunked = ChunkedDataset::Open(path);
  ASSERT_TRUE(chunked.ok());
  StreamTuneOptions options;
  options.group1 = 0;
  options.group2 = 7;  // out of range
  EXPECT_FALSE(BuildStreamCoefficientTable(*chunked, options).ok());
  options.group2 = 0;  // same as group1
  EXPECT_FALSE(BuildStreamCoefficientTable(*chunked, options).ok());
}

/// Streams a synthetic COMPAS sample to disk for end-to-end tuning tests.
std::string StreamedCompas(const std::string& name, size_t rows,
                           size_t block_rows) {
  const std::string path = TempPath(name);
  synthetic::StreamGenerateOptions options;
  options.num_rows = rows;
  options.block_rows = block_rows;
  options.seed = 42;
  Result<synthetic::StreamGenerateStats> stats =
      synthetic::GenerateSyntheticStream(MakeCompasSchema(), path, options);
  EXPECT_TRUE(stats.ok()) << stats.status();
  return path;
}

TEST(StreamTuneTest, SatisfiesStatisticalParityOnStreamedCompas) {
  const std::string path = StreamedCompas("tune_sp.ofcd", 6000, 512);
  Result<ChunkedDataset> chunked = ChunkedDataset::Open(path);
  ASSERT_TRUE(chunked.ok()) << chunked.status();

  StreamTuneOptions options;
  options.metric = MetricKind::kStatisticalParity;
  options.epsilon = 0.05;
  options.batch_size = 256;
  options.epochs = 3;
  Result<StreamTuneResult> tuned = StreamTuneLambda(*chunked, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status();
  EXPECT_TRUE(tuned->satisfied);
  EXPECT_LE(std::fabs(tuned->val_fairness_gap), options.epsilon);
  EXPECT_GT(tuned->val_accuracy, 0.55);
  EXPECT_GE(tuned->models_trained, 1);
  EXPECT_EQ(tuned->theta.size(), chunked->meta().num_features + 1);
  for (double t : tuned->theta) EXPECT_TRUE(std::isfinite(t));
}

TEST(StreamTuneTest, BitwiseDeterministicAcrossRuns) {
  const std::string path = StreamedCompas("tune_det.ofcd", 4000, 512);
  Result<ChunkedDataset> chunked = ChunkedDataset::Open(path);
  ASSERT_TRUE(chunked.ok()) << chunked.status();

  StreamTuneOptions options;
  options.batch_size = 128;
  options.epochs = 2;
  Result<StreamTuneResult> first = StreamTuneLambda(*chunked, options);
  Result<StreamTuneResult> second = StreamTuneLambda(*chunked, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->lambda, second->lambda);
  EXPECT_EQ(first->models_trained, second->models_trained);
  ASSERT_EQ(first->theta.size(), second->theta.size());
  for (size_t i = 0; i < first->theta.size(); ++i) {
    EXPECT_EQ(first->theta[i], second->theta[i]) << "theta[" << i << "]";
  }
}

TEST(StreamTuneTest, LambdaZeroWhenUnconstrained) {
  // epsilon = 1 is satisfied by any model, so the tuner returns the base fit.
  const std::string path = StreamedCompas("tune_loose.ofcd", 3000, 512);
  Result<ChunkedDataset> chunked = ChunkedDataset::Open(path);
  ASSERT_TRUE(chunked.ok());
  StreamTuneOptions options;
  options.epsilon = 1.0;
  options.batch_size = 256;
  options.epochs = 2;
  Result<StreamTuneResult> tuned = StreamTuneLambda(*chunked, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status();
  EXPECT_TRUE(tuned->satisfied);
  EXPECT_EQ(tuned->lambda, 0.0);
  EXPECT_EQ(tuned->models_trained, 1);
}

}  // namespace
}  // namespace omnifair
