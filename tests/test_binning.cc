// Unit tests for the histogram-mode binning subsystem (DESIGN.md §11):
// boundary placement, the coding invariant that makes bin splits realizable
// as real thresholds, node-histogram accumulation and subtraction, serial
// vs parallel bit-identity, and cache reuse across refits.

#include "ml/binning.h"

#include <cstring>
#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "util/random.h"
#include "util/telemetry.h"

namespace omnifair {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix X(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t f = 0; f < cols; ++f) X(i, f) = rng.NextGaussian(0.0, 3.0);
  }
  return X;
}

TEST(BinningTest, ConstantFeatureGetsSingleBin) {
  Matrix X(50, 2);
  for (size_t i = 0; i < X.rows(); ++i) {
    X(i, 0) = 7.25;                          // constant
    X(i, 1) = static_cast<double>(i % 10);  // varying
  }
  const auto binned = BinnedMatrix::Build(X, 255);
  EXPECT_EQ(binned->NumBins(0), 1);
  EXPECT_EQ(binned->NumBins(1), 10);
  const uint8_t* codes = binned->Column(0);
  for (size_t i = 0; i < X.rows(); ++i) EXPECT_EQ(codes[i], 0);
}

TEST(BinningTest, FewDistinctValuesGetOneBinEach) {
  // 4 distinct values, far fewer than max_bins: one bin per value, with
  // boundaries at the midpoints between adjacent values.
  Matrix X(40, 1);
  const double values[4] = {-2.0, 0.5, 3.0, 9.0};
  for (size_t i = 0; i < X.rows(); ++i) X(i, 0) = values[i % 4];
  const auto binned = BinnedMatrix::Build(X, 255);
  ASSERT_EQ(binned->NumBins(0), 4);
  EXPECT_DOUBLE_EQ(binned->Boundary(0, 0), 0.5 * (-2.0 + 0.5));
  EXPECT_DOUBLE_EQ(binned->Boundary(0, 1), 0.5 * (0.5 + 3.0));
  EXPECT_DOUBLE_EQ(binned->Boundary(0, 2), 0.5 * (3.0 + 9.0));
  const uint8_t* codes = binned->Column(0);
  for (size_t i = 0; i < X.rows(); ++i) EXPECT_EQ(codes[i], i % 4);
}

TEST(BinningTest, QuantileBinsAreNearEqualCount) {
  // 4000 distinct values into 8 bins: every bin holds ~n/8 rows even though
  // the value distribution is heavily skewed.
  Matrix X(4000, 1);
  Rng rng(3);
  for (size_t i = 0; i < X.rows(); ++i) {
    const double u = rng.NextUniform(0.0, 1.0);
    X(i, 0) = u * u * u;  // skewed toward 0
  }
  const auto binned = BinnedMatrix::Build(X, 8);
  ASSERT_EQ(binned->NumBins(0), 8);
  std::vector<size_t> counts(8, 0);
  const uint8_t* codes = binned->Column(0);
  for (size_t i = 0; i < X.rows(); ++i) ++counts[codes[i]];
  for (size_t b = 0; b < counts.size(); ++b) {
    EXPECT_GT(counts[b], X.rows() / 16) << "bin " << b;
    EXPECT_LT(counts[b], X.rows() / 4) << "bin " << b;
  }
}

TEST(BinningTest, CodingInvariantHolds) {
  // code <= b  <=>  value <= Boundary(f, b): training-time partitions by
  // code must agree with prediction-time partitions by threshold.
  const Matrix X = RandomMatrix(500, 3, 11);
  const auto binned = BinnedMatrix::Build(X, 16);
  for (size_t f = 0; f < X.cols(); ++f) {
    const uint8_t* codes = binned->Column(f);
    for (int b = 0; b + 1 < binned->NumBins(f); ++b) {
      const double threshold = binned->Boundary(f, b);
      for (size_t i = 0; i < X.rows(); ++i) {
        EXPECT_EQ(codes[i] <= b, X(i, f) <= threshold)
            << "feature " << f << " bin " << b << " row " << i;
      }
    }
  }
}

TEST(BinningTest, BoundariesStrictlyIncreasing) {
  const Matrix X = RandomMatrix(1000, 4, 21);
  const auto binned = BinnedMatrix::Build(X, 32);
  for (size_t f = 0; f < X.cols(); ++f) {
    for (int b = 1; b + 1 < binned->NumBins(f); ++b) {
      EXPECT_GT(binned->Boundary(f, b), binned->Boundary(f, b - 1));
    }
  }
}

TEST(BinningTest, ParallelBuildMatchesSerial) {
  const Matrix X = RandomMatrix(800, 6, 31);
  const auto serial = BinnedMatrix::Build(X, 64, /*num_threads=*/1);
  const auto parallel = BinnedMatrix::Build(X, 64, /*num_threads=*/4);
  for (size_t f = 0; f < X.cols(); ++f) {
    ASSERT_EQ(serial->NumBins(f), parallel->NumBins(f));
    for (int b = 0; b + 1 < serial->NumBins(f); ++b) {
      EXPECT_EQ(serial->Boundary(f, b), parallel->Boundary(f, b));
    }
    EXPECT_EQ(std::memcmp(serial->Column(f), parallel->Column(f), X.rows()), 0);
  }
}

TEST(BinningTest, NodeHistogramMatchesDirectSums) {
  const Matrix X = RandomMatrix(300, 3, 41);
  const auto binned = BinnedMatrix::Build(X, 16);
  Rng rng(5);
  std::vector<double> a(X.rows());
  std::vector<double> b(X.rows());
  for (size_t i = 0; i < X.rows(); ++i) {
    a[i] = rng.NextUniform(0.0, 2.0);
    b[i] = rng.NextUniform(0.0, 1.0);
  }
  std::vector<size_t> samples;
  for (size_t i = 0; i < X.rows(); i += 2) samples.push_back(i);

  NodeHistogram hist;
  FillNodeHistogram(*binned, samples, a.data(), b.data(), 1, &hist);

  for (size_t f = 0; f < X.cols(); ++f) {
    for (int bin = 0; bin < binned->NumBins(f); ++bin) {
      double want_a = 0.0;
      double want_b = 0.0;
      for (size_t i : samples) {
        if (binned->Column(f)[i] == bin) {
          want_a += a[i];
          want_b += b[i];
        }
      }
      const size_t idx = f * static_cast<size_t>(binned->max_bins()) + bin;
      EXPECT_DOUBLE_EQ(hist.first[idx], want_a);
      EXPECT_DOUBLE_EQ(hist.second[idx], want_b);
    }
  }
}

TEST(BinningTest, ParallelHistogramFillMatchesSerial) {
  // Big enough to cross the parallel-fill work cutoff.
  const Matrix X = RandomMatrix(20000, 4, 51);
  const auto binned = BinnedMatrix::Build(X, 32);
  std::vector<double> a(X.rows(), 1.0);
  std::vector<double> b(X.rows());
  for (size_t i = 0; i < X.rows(); ++i) b[i] = static_cast<double>(i % 7);
  std::vector<size_t> samples(X.rows());
  for (size_t i = 0; i < X.rows(); ++i) samples[i] = i;

  NodeHistogram serial;
  NodeHistogram parallel;
  FillNodeHistogram(*binned, samples, a.data(), b.data(), 1, &serial);
  FillNodeHistogram(*binned, samples, a.data(), b.data(), 4, &parallel);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(BinningTest, SubtractSiblingRecoversComplement) {
  const Matrix X = RandomMatrix(400, 2, 61);
  const auto binned = BinnedMatrix::Build(X, 16);
  std::vector<double> a(X.rows());
  std::vector<double> b(X.rows());
  for (size_t i = 0; i < X.rows(); ++i) {
    a[i] = 1.0 + static_cast<double>(i % 3);
    b[i] = 0.5 * static_cast<double>(i % 5);
  }
  std::vector<size_t> all(X.rows());
  std::vector<size_t> left;
  std::vector<size_t> right;
  for (size_t i = 0; i < X.rows(); ++i) {
    all[i] = i;
    (i % 3 == 0 ? left : right).push_back(i);
  }

  NodeHistogram parent;
  NodeHistogram left_hist;
  NodeHistogram right_hist;
  FillNodeHistogram(*binned, all, a.data(), b.data(), 1, &parent);
  FillNodeHistogram(*binned, left, a.data(), b.data(), 1, &left_hist);
  FillNodeHistogram(*binned, right, a.data(), b.data(), 1, &right_hist);

  parent.SubtractSibling(left_hist);  // parent - left == right
  for (size_t i = 0; i < parent.first.size(); ++i) {
    EXPECT_NEAR(parent.first[i], right_hist.first[i], 1e-9);
    EXPECT_NEAR(parent.second[i], right_hist.second[i], 1e-9);
  }
}

TEST(BinningTest, CacheReusesSameMatrixAndCountsIt) {
  const Matrix X = RandomMatrix(200, 3, 71);
  BinningCache cache;
  Counter* reused = MetricsRegistry::Global().GetCounter("tree.bins_reused");
  const long long reused_before = reused->Value();
  const auto first = cache.GetOrBuild(X, 255, 1);
  const auto second = cache.GetOrBuild(X, 255, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_GT(reused->Value(), reused_before);
}

TEST(BinningTest, CacheRebuildsForDifferentMatrixOrBinCount) {
  const Matrix X = RandomMatrix(200, 3, 81);
  const Matrix Y = RandomMatrix(200, 3, 91);
  BinningCache cache;
  const auto binned_x = cache.GetOrBuild(X, 255, 1);
  const auto binned_y = cache.GetOrBuild(Y, 255, 1);
  EXPECT_NE(binned_x.get(), binned_y.get());
  const auto binned_y_coarse = cache.GetOrBuild(Y, 16, 1);
  EXPECT_NE(binned_y.get(), binned_y_coarse.get());
  EXPECT_TRUE(binned_y_coarse->Matches(Y, 16));
  EXPECT_FALSE(binned_y_coarse->Matches(Y, 255));
}

TEST(BinningTest, MaxBinsClampedToCodeRange) {
  const Matrix X = RandomMatrix(600, 1, 101);
  const auto binned = BinnedMatrix::Build(X, 100000);
  EXPECT_EQ(binned->max_bins(), BinnedMatrix::kMaxBins);
  EXPECT_LE(binned->NumBins(0), BinnedMatrix::kMaxBins);
}

}  // namespace
}  // namespace omnifair
