#include "ml/logistic_regression.h"

#include <cmath>

#include "linalg/vector_ops.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omnifair {
namespace {

/// Weighted negative log-likelihood + L2, with theta = [w..., b]. `margins`
/// is caller-owned scratch of size n — the full-batch z = X w computed in one
/// MatVecInto (simd kernels, float32-aware, no per-call allocation).
double Loss(const Matrix& X, const std::vector<int>& y,
            const std::vector<double>& weights, const std::vector<double>& theta,
            double l2, std::vector<double>* margins) {
  const size_t n = X.rows();
  const size_t d = X.cols();
  margins->resize(n);
  X.MatVecInto(theta.data(), margins->data());
  const double bias = theta[d];
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double z = (*margins)[i] + bias;
    // -log p(y_i | x_i) = log(1+exp(z)) - y*z.
    loss += weights[i] * (Log1pExp(z) - (y[i] == 1 ? z : 0.0));
  }
  loss /= static_cast<double>(n);
  for (size_t c = 0; c < d; ++c) loss += 0.5 * l2 * theta[c] * theta[c];
  return loss;
}

/// Gradient of Loss w.r.t. theta; returns infinity norm. `margins` is the
/// same caller-owned scratch as Loss's: it holds z, then sigmoid(z), then the
/// weighted residuals that feed the X^T product.
double Gradient(const Matrix& X, const std::vector<int>& y,
                const std::vector<double>& weights, const std::vector<double>& theta,
                double l2, std::vector<double>* grad, std::vector<double>* margins) {
  const size_t n = X.rows();
  const size_t d = X.cols();
  margins->resize(n);
  X.MatVecInto(theta.data(), margins->data());
  double* residual = margins->data();
  const double bias = theta[d];
  for (size_t i = 0; i < n; ++i) residual[i] += bias;
  SigmoidInPlace(residual, n);
  for (size_t i = 0; i < n; ++i) {
    residual[i] = weights[i] * (residual[i] - (y[i] == 1 ? 1.0 : 0.0));
  }
  X.TransposeMatVecInto(residual, grad->data());
  (*grad)[d] = 0.0;
  for (size_t i = 0; i < n; ++i) (*grad)[d] += residual[i];
  const double inv_n = 1.0 / static_cast<double>(n);
  double max_abs = 0.0;
  for (size_t c = 0; c <= d; ++c) {
    (*grad)[c] *= inv_n;
    if (c < d) (*grad)[c] += l2 * theta[c];
    max_abs = std::max(max_abs, std::fabs((*grad)[c]));
  }
  return max_abs;
}

}  // namespace

LogisticRegressionModel::LogisticRegressionModel(std::vector<double> coefficients,
                                                 double intercept)
    : coefficients_(std::move(coefficients)), intercept_(intercept) {}

std::vector<double> LogisticRegressionModel::PredictProba(const Matrix& X) const {
  OF_CHECK_EQ(X.cols(), coefficients_.size());
  // Fused batch predict: the margins land straight in the output buffer (one
  // simd matvec over either storage mode), then one batched sigmoid pass.
  std::vector<double> proba(X.rows());
  X.MatVecInto(coefficients_.data(), proba.data());
  for (double& p : proba) p += intercept_;
  SigmoidInPlace(&proba);
  return proba;
}

LogisticRegressionTrainer::LogisticRegressionTrainer(LogisticRegressionOptions options)
    : options_(options) {}

std::unique_ptr<Classifier> LogisticRegressionTrainer::Fit(
    const Matrix& X, const std::vector<int>& y, const std::vector<double>& weights) {
  OF_CHECK_EQ(X.rows(), y.size());
  OF_CHECK_EQ(X.rows(), weights.size());
  OF_TRACE_SPAN("fit/lr");
  OF_SCOPED_LATENCY_US("ml.fit_us.lr");
  const size_t d = X.cols();

  std::vector<double> theta(d + 1, 0.0);
  if (warm_start_ && warm_theta_.size() == d + 1) theta = warm_theta_;

  std::vector<double> grad(d + 1, 0.0);
  std::vector<double> candidate(d + 1, 0.0);
  std::vector<double> margins(X.rows(), 0.0);  // shared z/residual scratch
  double step = options_.learning_rate;
  double loss = Loss(X, y, weights, theta, options_.l2, &margins);
  if (!std::isfinite(loss) && warm_start_) {
    // A pathological warm start (e.g. from a diverged previous fit) can put
    // the initial loss out of range; restart from zero instead.
    std::fill(theta.begin(), theta.end(), 0.0);
    loss = Loss(X, y, weights, theta, options_.l2, &margins);
  }
  if (!std::isfinite(loss)) {
    // Even theta = 0 overflows: the data/weights themselves are degenerate.
    OF_LOG(Warning) << "logistic regression: non-finite loss at theta=0; "
                       "returning the zero-coefficient model";
    return std::make_unique<LogisticRegressionModel>(std::vector<double>(d, 0.0), 0.0);
  }

  // Divergence recovery (DESIGN.md §8): `checkpoint` is the last theta whose
  // loss was finite; on a non-finite loss/gradient we roll back to it with a
  // halved learning rate, up to max_divergence_retries times.
  std::vector<double> checkpoint = theta;
  double checkpoint_loss = loss;
  int retries = 0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    ++total_iterations_;
    const double grad_norm =
        Gradient(X, y, weights, theta, options_.l2, &grad, &margins);
    const bool diverged = !std::isfinite(loss) || !std::isfinite(grad_norm) ||
                          FaultInjector::ShouldFail(fault_sites::kLrDescend);
    if (diverged) {
      if (retries >= options_.max_divergence_retries) {
        OF_LOG(Warning) << "logistic regression: divergence persisted after "
                        << retries << " retries; returning last checkpoint";
        theta = checkpoint;
        break;
      }
      ++retries;
      CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
      OF_LOG(Warning) << "logistic regression: non-finite loss/gradient at "
                         "iteration "
                      << iter << "; backing off (retry " << retries << ")";
      theta = checkpoint;
      loss = checkpoint_loss;
      step = options_.learning_rate * std::pow(0.5, retries);
      continue;
    }
    if (grad_norm < options_.tolerance) break;

    // Backtracking line search on the full-batch loss.
    bool accepted = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      for (size_t c = 0; c <= d; ++c) candidate[c] = theta[c] - step * grad[c];
      const double candidate_loss =
          Loss(X, y, weights, candidate, options_.l2, &margins);
      if (candidate_loss <= loss) {
        theta.swap(candidate);
        loss = candidate_loss;
        accepted = true;
        // Gently expand the step after success to speed convergence.
        step = std::min(step * 1.25, 64.0);
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // step underflow: converged to numeric precision
    if (std::isfinite(loss)) {
      checkpoint = theta;
      checkpoint_loss = loss;
    }
  }

  if (warm_start_) warm_theta_ = theta;
  const double intercept = theta[d];
  theta.resize(d);
  return std::make_unique<LogisticRegressionModel>(std::move(theta), intercept);
}

}  // namespace omnifair
