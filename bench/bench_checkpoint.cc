// Durability-layer overhead (DESIGN.md §12). Checkpointing a tuning run
// serializes every fitted model and snapshots the replay log to disk at
// record barriers. Two policies are timed against a plain run: interval 0
// (fsync at every barrier, the worst case — dominated by fsync latency on
// tiny fits) and the production 5s throttle, which must stay under 2%
// overhead. Also measures resume: replaying a completed log is pure
// deserialization and should beat retraining by orders of magnitude.

#include "bench/bench_common.h"

#include <cstdio>
#include <string>

namespace omnifair {
namespace bench {
namespace {

void Run(BenchReporter& reporter) {
  const int seeds = EnvSeeds(3);
  reporter.Config("seeds", seeds);
  reporter.Config("metric", "sp");
  reporter.Config("epsilon", 0.03);
  PrintHeader("Checkpoint overhead under LR (SP epsilon = 0.03)");
  std::printf("%-10s %-8s %12s %14s %10s %14s %10s %12s\n", "dataset",
              "trainer", "plain (s)", "ckpt@0 (s)", "overhead", "ckpt@5s (s)",
              "overhead", "resume (s)");

  const std::string ckpt_path =
      BenchReporter::OutputDirectory() + "/bench_checkpoint.ckpt";

  for (const std::string& dataset : {"compas", "adult"}) {
    for (const std::string& trainer_name : {"lr", "dt"}) {
      double plain_seconds = 0.0;
      double eager_seconds = 0.0;
      double throttled_seconds = 0.0;
      double resume_seconds = 0.0;
      long long ckpt_bytes = 0;
      for (int s = 0; s < seeds; ++s) {
        const Dataset data = MakeBenchDataset(dataset, 300 + s);
        const TrainValTestSplit split = SplitDefault(data, 400 + s);
        const FairnessSpec spec = MakeSpec(MainGroups(dataset), "sp", 0.03);

        // Plain run, then the identical search under the two checkpoint
        // policies: interval 0 fsyncs at every record barrier (worst-case
        // IO), interval 5s is the production throttle (first + final write
        // at these run lengths).
        for (int config = 0; config < 3; ++config) {
          auto trainer = MakeTrainer(trainer_name, 500 + s);
          OmniFairOptions options;
          if (config > 0) options.checkpoint.path = ckpt_path;
          if (config == 2) options.checkpoint.interval_s = 5.0;
          Stopwatch stopwatch;
          auto fair =
              OmniFair(options).Train(split.train, split.val, trainer.get(), {spec});
          const double elapsed = stopwatch.ElapsedSeconds();
          if (!fair.ok()) continue;
          (config == 0 ? plain_seconds
                       : config == 1 ? eager_seconds : throttled_seconds) +=
              elapsed;
        }

        // Resume the *finished* checkpoint: every fit replays from the log,
        // so this is the upper bound on recovered work per second.
        {
          auto trainer = MakeTrainer(trainer_name, 500 + s);
          OmniFairOptions options;
          options.checkpoint.resume_from = ckpt_path;
          Stopwatch stopwatch;
          auto fair =
              OmniFair(options).Train(split.train, split.val, trainer.get(), {spec});
          if (fair.ok()) resume_seconds += stopwatch.ElapsedSeconds();
        }
        const auto* bytes_counter =
            MetricsRegistry::Global().GetCounter("checkpoint.bytes");
        ckpt_bytes = bytes_counter->Value();
      }
      const double eager_overhead =
          plain_seconds > 0.0 ? eager_seconds / plain_seconds - 1.0 : 0.0;
      const double throttled_overhead =
          plain_seconds > 0.0 ? throttled_seconds / plain_seconds - 1.0 : 0.0;
      std::printf("%-10s %-8s %12.3f %14.3f %9.1f%% %14.3f %9.1f%% %12.3f\n",
                  dataset.c_str(), trainer_name.c_str(), plain_seconds / seeds,
                  eager_seconds / seeds, 100.0 * eager_overhead,
                  throttled_seconds / seeds, 100.0 * throttled_overhead,
                  resume_seconds / seeds);
      reporter.AddRow("checkpoint_overhead")
          .Label("dataset", dataset)
          .Label("trainer", trainer_name)
          .Value("plain_seconds", plain_seconds / seeds)
          .Value("checkpoint_seconds", eager_seconds / seeds)
          .Value("throttled_seconds", throttled_seconds / seeds)
          .Value("overhead_fraction", eager_overhead)
          .Value("throttled_overhead_fraction", throttled_overhead)
          .Value("resume_seconds", resume_seconds / seeds)
          .Value("checkpoint_bytes", static_cast<double>(ckpt_bytes));
    }
  }
  std::printf("(ckpt@0 snapshots at every fit barrier; production runs use "
              "--checkpoint-interval to throttle)\n");
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "checkpoint", "Checkpoint/resume durability overhead (DESIGN.md §12)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
