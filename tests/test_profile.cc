#include "data/profile.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "tests/testing_fairness.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

TEST(ProfileTest, BasicShape) {
  const Dataset d = MakeBiasedDataset(1000, 0.6, 0.3, 1);
  const DatasetProfile profile = ProfileDataset(d, "grp");
  EXPECT_EQ(profile.rows, 1000u);
  EXPECT_EQ(profile.columns.size(), d.NumColumns());
  EXPECT_NEAR(profile.positive_rate, d.PositiveRate(), 1e-12);
  ASSERT_EQ(profile.groups.size(), 2u);
}

TEST(ProfileTest, GroupBaseRates) {
  const Dataset d = MakeBiasedDataset(5000, 0.7, 0.2, 2);
  const DatasetProfile profile = ProfileDataset(d, "grp");
  ASSERT_EQ(profile.groups.size(), 2u);
  // Map-ordered: "a" first (rate ~0.7), "b" second (~0.2).
  EXPECT_NEAR(profile.groups[0].positive_rate, 0.7, 0.04);
  EXPECT_NEAR(profile.groups[1].positive_rate, 0.2, 0.04);
  EXPECT_NEAR(profile.base_rate_gap, 0.5, 0.06);
  EXPECT_NEAR(profile.groups[0].fraction + profile.groups[1].fraction, 1.0, 1e-12);
}

TEST(ProfileTest, NumericColumnStatistics) {
  const Dataset d = MakeBiasedDataset(2000, 0.6, 0.3, 3, /*feature_shift=*/2.0);
  const DatasetProfile profile = ProfileDataset(d);
  const ColumnProfile* score = nullptr;
  const ColumnProfile* noise = nullptr;
  for (const ColumnProfile& column : profile.columns) {
    if (column.name == "score") score = &column;
    if (column.name == "noise") noise = &column;
  }
  ASSERT_NE(score, nullptr);
  ASSERT_NE(noise, nullptr);
  // "score" is label-shifted by 2 sigma: strongly correlated with y.
  EXPECT_GT(score->label_correlation, 0.5);
  // "noise" is independent of y.
  EXPECT_LT(std::fabs(noise->label_correlation), 0.1);
  EXPECT_LT(score->min, score->max);
  EXPECT_GT(score->stddev, 0.0);
}

TEST(ProfileTest, CategoricalColumnStatistics) {
  SyntheticOptions options;
  options.num_rows = 3000;
  options.seed = 4;
  const Dataset d = MakeCompasDataset(options);
  const DatasetProfile profile = ProfileDataset(d, "race");
  const ColumnProfile* race = nullptr;
  for (const ColumnProfile& column : profile.columns) {
    if (column.name == "race") race = &column;
  }
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->type, ColumnType::kCategorical);
  EXPECT_EQ(race->num_categories, 4u);
  EXPECT_EQ(race->most_common, "African-American");
  EXPECT_NEAR(race->most_common_fraction, 0.51, 0.03);
  EXPECT_NEAR(profile.base_rate_gap, 0.20, 0.06);
}

TEST(ProfileTest, NoSensitiveAttributeNoGroups) {
  const Dataset d = MakeBiasedDataset(200, 0.6, 0.3, 5);
  const DatasetProfile profile = ProfileDataset(d);
  EXPECT_TRUE(profile.groups.empty());
  EXPECT_DOUBLE_EQ(profile.base_rate_gap, 0.0);
}

TEST(ProfileTest, ToStringRenders) {
  const Dataset d = MakeBiasedDataset(500, 0.6, 0.3, 6);
  const DatasetProfile profile = ProfileDataset(d, "grp");
  const std::string text = profile.ToString();
  EXPECT_NE(text.find("group base rates"), std::string::npos);
  EXPECT_NE(text.find("score"), std::string::npos);
  EXPECT_NE(text.find("P(y=1|g)"), std::string::npos);
}

}  // namespace
}  // namespace omnifair
