#ifndef OMNIFAIR_ML_SERIALIZATION_H_
#define OMNIFAIR_ML_SERIALIZATION_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/snapshot_io.h"
#include "util/status.h"

namespace omnifair {

/// Saves a trained model in the library's line-oriented text format.
/// Supported families: logistic_regression, naive_bayes, decision_tree,
/// random_forest, gbdt, mlp. Returns kUnsupported for other classifiers
/// (e.g. the ExpGrad ensemble).
Status SerializeModel(const Classifier& model, std::ostream& os);
Status SaveModel(const Classifier& model, const std::string& path);

/// Loads a model written by SerializeModel/SaveModel. Malformed input yields
/// typed statuses with byte context: kDataLoss for truncation, and
/// kInvalidArgument for content that parses but cannot describe a valid
/// model (unknown node kinds, out-of-range tree child indices, absurd
/// counts). Tree payloads are validated so a hostile file can never make
/// Predict read out of bounds or loop forever.
Result<std::unique_ptr<Classifier>> DeserializeModel(std::istream& is);
Result<std::unique_ptr<Classifier>> LoadModel(const std::string& path);

/// Compact binary model codec over the snapshot byte layer (util/snapshot_io).
/// Doubles are stored as raw IEEE-754 bits, so a deserialized model is
/// bit-identical to the original — the property the checkpoint/resume layer
/// depends on. Same families as the text format; other classifiers return
/// kUnsupported.
Status SerializeModelBinary(const Classifier& model, BinaryWriter& writer);
/// Consumes one model from `reader` (as written by SerializeModelBinary).
/// Corrupt payloads yield kDataLoss with the failing byte offset.
Result<std::unique_ptr<Classifier>> DeserializeModelBinary(BinaryReader& reader);

/// Whole-buffer conveniences around the streaming codec.
Result<std::vector<uint8_t>> SerializeModelBinary(const Classifier& model);
Result<std::unique_ptr<Classifier>> DeserializeModelBinary(
    const std::vector<uint8_t>& bytes);

}  // namespace omnifair

#endif  // OMNIFAIR_ML_SERIALIZATION_H_
