#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace omnifair {
namespace {

TEST(MatrixTest, DefaultEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, ElementWrite) {
  Matrix m(2, 2);
  m(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, RowPointerIsContiguous) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const double* row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(MatrixTest, RowAndColVector) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.RowVector(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(m.ColVector(0), (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(MatrixTest, SelectRows) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix s = m.SelectRows({2, 0});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
}

TEST(MatrixTest, SelectRowsWithRepeats) {
  Matrix m = {{1.0}, {2.0}};
  Matrix s = m.SelectRows({1, 1, 1});
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(2, 0), 2.0);
}

TEST(MatrixTest, AppendRowToEmpty) {
  Matrix m;
  m.AppendRow({1.0, 2.0, 3.0});
  m.AppendRow({4.0, 5.0, 6.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> y = m.MatVec({1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, TransposeMatVec) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> y = m.TransposeMatVec({1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(MatrixTest, MatVecTransposeConsistency) {
  // x^T (A y) == (A^T x)^T y for random-ish fixed values.
  Matrix a = {{1.0, -2.0, 0.5}, {3.0, 4.0, -1.0}};
  const std::vector<double> x = {0.7, -1.3};
  const std::vector<double> y = {2.0, 0.1, -0.4};
  const std::vector<double> ay = a.MatVec(y);
  const std::vector<double> atx = a.TransposeMatVec(x);
  double lhs = 0.0;
  for (size_t i = 0; i < x.size(); ++i) lhs += x[i] * ay[i];
  double rhs = 0.0;
  for (size_t i = 0; i < y.size(); ++i) rhs += atx[i] * y[i];
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

}  // namespace
}  // namespace omnifair
