// Tree-training benchmark for the histogram split path (DESIGN.md §11):
//   1. exact vs histogram fit time for CART and GBDT at several n and bin
//      counts (the O(features * n log n) -> O(features * bins) claim),
//   2. binning amortization: a cold fit pays for BinnedMatrix::Build once,
//      every warm refit with new example weights reuses it,
//   3. a grid-search run on a histogram GBDT, confirming the tuner's
//      per-clone fits share one binning (tree.bins_reused > 0).
//
// Knobs: OMNIFAIR_BENCH_ROWS (default 30000 — the acceptance scale).

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/grid_search.h"
#include "core/problem.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"

namespace omnifair {
namespace bench {
namespace {

struct EncodedData {
  Matrix X;
  std::vector<int> y;
};

/// First `n` rows of the encoded synthetic-Adult training matrix.
EncodedData Subset(const Matrix& X, const std::vector<int>& y, size_t n) {
  EncodedData out;
  out.X = Matrix(n, X.cols());
  out.y.assign(y.begin(), y.begin() + n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < X.cols(); ++f) out.X(i, f) = X(i, f);
  }
  return out;
}

double TimeFit(Trainer& trainer, const EncodedData& data,
               const std::vector<double>& weights) {
  Stopwatch stopwatch;
  const auto model = trainer.Fit(data.X, data.y, weights);
  OF_CHECK(model != nullptr);
  return stopwatch.ElapsedSeconds();
}

long long BinsReused() {
  return MetricsRegistry::Global().GetCounter("tree.bins_reused")->Value();
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  using namespace omnifair;
  using namespace omnifair::bench;

  InitTelemetryFromEnv();
  const size_t rows = EnvRows(30000);

  BenchReporter reporter("tree_build",
                         "Histogram vs exact tree training and binning reuse");
  reporter.Config("rows", rows);

  SyntheticOptions data_options;
  data_options.num_rows = rows;
  data_options.seed = 11;
  const Dataset data = MakeAdultDataset(data_options);
  auto encoder_helper = MakeTrainer("lr");
  auto problem = FairnessProblem::Create(
      data, data, {MakeSpec(MainGroups("adult"), "sp", 0.05)},
      encoder_helper.get());
  OF_CHECK(problem.ok()) << problem.status();
  const Matrix& X = (*problem)->train_features();
  const std::vector<int>& y = (*problem)->train().labels();
  reporter.Config("features", X.cols());

  // --- 1. exact vs histogram fit time at several n and bin counts --------
  PrintHeader("tree build: exact vs histogram");
  std::printf("%-6s %8s %10s %12s %12s %9s\n", "family", "rows", "bins",
              "exact_s", "hist_s", "speedup");
  const std::vector<size_t> sizes = {X.rows() / 4, X.rows() / 2, X.rows()};
  const std::vector<int> bin_counts = {32, 255};
  for (size_t n : sizes) {
    if (n < 8) continue;
    const EncodedData subset = Subset(X, y, n);
    const std::vector<double> weights(n, 1.0);

    // CART: moderate depth so the exact fit stays bench-scale at 30k rows.
    DecisionTreeOptions dt_exact;
    dt_exact.max_depth = 6;
    const double dt_exact_seconds = [&] {
      DecisionTreeTrainer trainer(dt_exact);
      return TimeFit(trainer, subset, weights);
    }();
    // GBDT: few rounds — the exact/histogram ratio is per-round anyway.
    GbdtOptions xgb_exact;
    xgb_exact.num_rounds = 8;
    const double xgb_exact_seconds = [&] {
      GbdtTrainer trainer(xgb_exact);
      return TimeFit(trainer, subset, weights);
    }();

    for (int bins : bin_counts) {
      DecisionTreeOptions dt_hist = dt_exact;
      dt_hist.split_method = SplitMethod::kHistogram;
      dt_hist.max_bins = bins;
      DecisionTreeTrainer dt_trainer(dt_hist);
      const double dt_hist_seconds = TimeFit(dt_trainer, subset, weights);

      GbdtOptions xgb_hist = xgb_exact;
      xgb_hist.split_method = SplitMethod::kHistogram;
      xgb_hist.max_bins = bins;
      GbdtTrainer xgb_trainer(xgb_hist);
      const double xgb_hist_seconds = TimeFit(xgb_trainer, subset, weights);

      std::printf("%-6s %8zu %10d %12.4f %12.4f %8.2fx\n", "dt", n, bins,
                  dt_exact_seconds, dt_hist_seconds,
                  dt_exact_seconds / dt_hist_seconds);
      std::printf("%-6s %8zu %10d %12.4f %12.4f %8.2fx\n", "xgb", n, bins,
                  xgb_exact_seconds, xgb_hist_seconds,
                  xgb_exact_seconds / xgb_hist_seconds);
      reporter.AddRow("tree_build")
          .Label("family", "dt")
          .Label("bins", std::to_string(bins))
          .Value("rows", static_cast<double>(n))
          .Value("exact_seconds", dt_exact_seconds)
          .Value("hist_seconds", dt_hist_seconds)
          .Value("speedup", dt_exact_seconds / dt_hist_seconds);
      reporter.AddRow("tree_build")
          .Label("family", "xgb")
          .Label("bins", std::to_string(bins))
          .Value("rows", static_cast<double>(n))
          .Value("exact_seconds", xgb_exact_seconds)
          .Value("hist_seconds", xgb_hist_seconds)
          .Value("speedup", xgb_exact_seconds / xgb_hist_seconds);
    }
  }

  // --- 2. binning amortization: cold fit vs warm refits ------------------
  PrintHeader("binning amortization (one trainer, weights change per refit)");
  {
    const EncodedData full = Subset(X, y, X.rows());
    GbdtOptions options;
    options.num_rounds = 8;
    options.split_method = SplitMethod::kHistogram;
    GbdtTrainer trainer(options);

    std::vector<double> weights(full.X.rows(), 1.0);
    const long long reused_before = BinsReused();
    const double cold_seconds = TimeFit(trainer, full, weights);
    // A λ refit: same X, different example weights — binning must be reused.
    for (size_t i = 0; i < weights.size(); ++i) {
      weights[i] = 1.0 + 0.25 * static_cast<double>(i % 5);
    }
    const double warm_seconds = TimeFit(trainer, full, weights);
    const long long reused = BinsReused() - reused_before;

    std::printf("cold fit %.4fs, warm refit %.4fs, bins reused %lld\n",
                cold_seconds, warm_seconds, reused);
    reporter.AddRow("binning_amortization")
        .Label("family", "xgb")
        .Value("rows", static_cast<double>(full.X.rows()))
        .Value("cold_seconds", cold_seconds)
        .Value("warm_seconds", warm_seconds)
        .Value("bins_reused", static_cast<double>(reused));
  }

  // --- 3. grid search on a histogram GBDT shares one binning -------------
  PrintHeader("grid search reuse (per-clone fits share the BinningCache)");
  {
    GbdtOptions options;
    options.num_rounds = 4;
    options.split_method = SplitMethod::kHistogram;
    GbdtTrainer trainer(options);
    auto grid_problem = FairnessProblem::Create(
        data, data, {MakeSpec(MainGroups("adult"), "sp", 0.05)}, &trainer);
    OF_CHECK(grid_problem.ok()) << grid_problem.status();

    GridSearchOptions grid_options;
    grid_options.points_per_dim = 5;
    grid_options.max_lambda = 0.4;
    grid_options.num_threads = 4;
    const GridSearchTuner tuner(grid_options);

    const long long reused_before = BinsReused();
    Stopwatch stopwatch;
    const MultiTuneResult result = tuner.Run(**grid_problem);
    const double grid_seconds = stopwatch.ElapsedSeconds();
    const long long reused = BinsReused() - reused_before;

    std::printf("grid: %d models in %.2fs, bins reused %lld (want > 0)\n",
                result.models_trained, grid_seconds, reused);
    reporter.AddRow("grid_reuse")
        .Label("family", "xgb")
        .Value("models_trained", static_cast<double>(result.models_trained))
        .Value("seconds", grid_seconds)
        .Value("bins_reused", static_cast<double>(reused));
  }

  return FinishBench(reporter);
}
