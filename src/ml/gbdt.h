#ifndef OMNIFAIR_ML_GBDT_H_
#define OMNIFAIR_ML_GBDT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace omnifair {

/// Hyperparameters for the gradient-boosted tree ensemble.
struct GbdtOptions {
  int num_rounds = 40;
  int max_depth = 4;
  double learning_rate = 0.25;
  /// L2 regularization on leaf values (XGBoost's lambda).
  double reg_lambda = 1.0;
  /// Minimum hessian sum per leaf (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
  /// Minimum gain to accept a split (XGBoost's gamma).
  double min_split_gain = 0.0;
  /// Divergence recovery (DESIGN.md §8): a boosting round whose tree pushes
  /// any raw score non-finite is dropped and subsequent trees have their
  /// leaf values damped by another factor of 2, at most this many times
  /// before boosting stops with the ensemble built so far.
  int max_divergence_retries = 3;
};

/// A regression tree over (gradient, hessian) statistics: internal nodes
/// split on feature thresholds; leaves hold additive log-odds contributions.
struct GbdtTreeNode {
  bool is_leaf = true;
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;  // leaf weight (log-odds delta)
};

/// An XGBoost-style boosted ensemble for binary classification.
class GbdtModel : public Classifier {
 public:
  GbdtModel(std::vector<std::vector<GbdtTreeNode>> trees, double base_score,
            double learning_rate);

  std::vector<double> PredictProba(const Matrix& X) const override;
  std::string Name() const override { return "gbdt"; }

  size_t NumTrees() const { return trees_.size(); }
  const std::vector<std::vector<GbdtTreeNode>>& trees() const { return trees_; }
  double base_score() const { return base_score_; }
  double learning_rate() const { return learning_rate_; }
  /// Raw additive score (log-odds) per row.
  std::vector<double> PredictRaw(const Matrix& X) const;

 private:
  std::vector<std::vector<GbdtTreeNode>> trees_;
  double base_score_;
  double learning_rate_;
};

/// Gradient-boosted decision trees with the second-order (Newton) logistic
/// objective of XGBoost [13]. Example weights scale each example's gradient
/// and hessian, matching xgboost's sample_weight semantics — this is the
/// "XGB" column of the paper's Table 5.
class GbdtTrainer : public Trainer {
 public:
  explicit GbdtTrainer(GbdtOptions options = {});

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override;
  using Trainer::Fit;

  std::string Name() const override { return "gbdt"; }
  std::unique_ptr<Trainer> Clone() const override {
    return std::make_unique<GbdtTrainer>(options_);
  }

 private:
  GbdtOptions options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_GBDT_H_
