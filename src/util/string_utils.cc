#include "util/string_utils.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace omnifair {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace omnifair
