// Reproduces Figure 3: effect of the validation-set size on test-set
// accuracy and bias for COMPAS under SP epsilon = 0.03. Expected shape:
// with a tiny validation set the constraint fails to generalize (test bias
// clearly above 0.03); as validation grows the test bias stabilizes near
// the declared epsilon while accuracy stays flat.

#include "bench/bench_common.h"

#include <cmath>

namespace omnifair {
namespace bench {
namespace {

void Run(BenchReporter& reporter) {
  const int seeds = EnvSeeds(3);
  reporter.Config("seeds", seeds);
  reporter.Config("dataset", "compas");
  reporter.Config("metric", "sp");
  reporter.Config("epsilon", 0.03);
  PrintHeader("Figure 3: validation size ablation (COMPAS, SP eps = 0.03, LR)");
  std::printf("%-14s %10s %10s %10s\n", "val fraction", "test acc", "test bias",
              "val bias");

  const GroupingFunction groups = MainGroups("compas");
  for (double val_fraction : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    double accuracy = 0.0;
    double bias = 0.0;
    double val_bias = 0.0;
    int runs = 0;
    for (int s = 0; s < seeds; ++s) {
      const Dataset data = MakeBenchDataset("compas", 1100 + s);
      // Keep train (60%) and test (20%) fixed-size; carve the validation
      // split out of the remaining 20% budget.
      const TrainValTestSplit split = SplitDataset(data, 0.6, val_fraction, 1200 + s);
      const FairnessSpec spec = MakeSpec(groups, "sp", 0.03);
      auto trainer = MakeTrainer("lr");
      OmniFair omnifair;
      auto fair = omnifair.Train(split.train, split.val, trainer.get(), {spec});
      if (!fair.ok()) continue;
      // Audit on the last 20% (the test tail of this split).
      std::vector<size_t> test_tail(split.test_indices.end() -
                                        static_cast<long>(data.NumRows() / 5),
                                    split.test_indices.end());
      const Dataset test = data.SelectRows(test_tail);
      auto audit = Audit(*fair->model, fair->encoder, test, {spec});
      if (!audit.ok()) continue;
      ++runs;
      accuracy += audit->accuracy;
      bias += audit->max_disparity;
      val_bias += std::fabs(fair->val_fairness_parts[0]);
    }
    if (runs == 0) continue;
    std::printf("%-14.2f %9.1f%% %10.3f %10.3f\n", val_fraction,
                100.0 * accuracy / runs, bias / runs, val_bias / runs);
    reporter.AddRow("validation_size")
        .Value("val_fraction", val_fraction)
        .Value("runs", runs)
        .Value("test_accuracy", accuracy / runs)
        .Value("test_bias", bias / runs)
        .Value("val_bias", val_bias / runs);
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "fig3_validation_size",
      "Figure 3: validation size ablation (COMPAS, SP eps = 0.03, LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
