#ifndef OMNIFAIR_CORE_LAMBDA_TUNER_H_
#define OMNIFAIR_CORE_LAMBDA_TUNER_H_

#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "core/problem.h"
#include "ml/classifier.h"
#include "util/status.h"

namespace omnifair {

/// Knobs of Algorithm 1. Defaults follow the paper (tau ~ 1e-4..1e-3,
/// delta ~ 1e-3..2e-2); slightly coarser defaults keep retraining counts
/// reasonable across the benchmark suite and are configurable per run.
struct TuneOptions {
  /// Binary-search resolution on lambda (paper's tau, line 11).
  double tau = 1e-3;
  /// Linear-search step for prediction-parameterized metrics (paper's
  /// delta, line 10).
  double delta = 0.02;
  /// Initial exponential-search bound (paper initializes lambda_u = 1).
  double initial_step = 1.0;
  /// Cap on doublings in the exponential search.
  int max_doublings = 24;
  /// Cap on linear-search steps.
  int max_linear_steps = 400;
  /// Future-work extension (paper §8): fraction of the training split used
  /// for the fits of the *bounding* stage (exponential/linear search);
  /// 1.0 disables. The binary-search refinement always trains on the full
  /// split, so final quality is unaffected — only the cheap bracketing
  /// fits are subsampled.
  double bounding_subsample = 1.0;
  uint64_t subsample_seed = 5;
  /// Worker threads for the linear-search bracket probes (the two direction
  /// walks of the prediction-parameterized branch are independent within a
  /// step and fit concurrently on trainer clones). 1 keeps the exact serial
  /// path; the exponential and binary stages are sequentially dependent and
  /// always run serially. The chosen model and lambda match the serial
  /// search; the only divergence is that the step on which one direction
  /// resolves still pays the other direction's already-started fit (at most
  /// one extra model per coordinate tune, recorded in the TuneReport).
  int num_threads = 1;
  /// Crash-safe checkpoint/resume for this run (DESIGN.md §12). Not
  /// supported together with warm-start trainers.
  CheckpointOptions checkpoint;
};

/// Outcome of one Algorithm 1 run (or one hill-climbing coordinate step).
struct TuneResult {
  /// Best model found. On infeasibility this is the closest model reached
  /// (best-effort), with satisfied=false. Null only when the trainer failed
  /// (exception firewall) before any model could be produced — `status`
  /// carries the cause then.
  std::unique_ptr<Classifier> model;
  /// kOk when the search ran to completion. DEADLINE_EXCEEDED when the
  /// TrainBudget expired mid-search (model is the best found so far);
  /// INTERNAL when the trainer threw or returned null (model is the best
  /// earlier candidate, possibly null).
  Status status;
  /// Final value of the tuned lambda coordinate.
  double lambda = 0.0;
  /// Whether the target constraint is satisfied on the validation split.
  bool satisfied = false;
  double val_accuracy = 0.0;
  /// FP_j on validation for every constraint, for the returned model.
  std::vector<double> val_fairness_parts;
  /// Trainer invocations consumed by this call.
  int models_trained = 0;
};

/// Algorithm 1: tunes a single lambda hyperparameter so that one fairness
/// constraint holds on the validation split while maximizing validation
/// accuracy. Relies on the monotonicity of FP(theta) in lambda (Lemma 2):
/// exponential search brackets the crossing, binary search pins it to tau.
/// For prediction-parameterized metrics (FOR/FDR) the bracketing uses the
/// incremental linear search of §5.2, carrying the previous model's
/// predictions to approximate w_i(lambda, h_theta).
class LambdaTuner {
 public:
  explicit LambdaTuner(TuneOptions options = {});

  /// Full Algorithm 1 for a single-constraint problem (starts at lambda=0).
  TuneResult TuneSingle(FairnessProblem& problem) const;

  /// Coordinate step used by Algorithm 2: tunes (*lambdas)[j], holding the
  /// other coordinates at their current values, starting the search from
  /// the current (*lambdas)[j]. `initial_model` (optional) is the model
  /// trained at the current lambdas, saving one fit; it also seeds the
  /// weight-model predictions for prediction-parameterized metrics.
  /// On return (*lambdas)[j] holds the chosen value.
  TuneResult TuneCoordinate(FairnessProblem& problem, size_t j,
                            std::vector<double>* lambdas,
                            const Classifier* initial_model) const;

  const TuneOptions& options() const { return options_; }

 private:
  TuneOptions options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_LAMBDA_TUNER_H_
