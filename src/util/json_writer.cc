#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace omnifair {

void JsonWriter::BeforeValue() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!scopes_.empty()) {
    OF_CHECK(scopes_.back() == Scope::kArray)
        << "JSON object values need a Key() first";
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
  os_ << '{';
}

void JsonWriter::EndObject() {
  OF_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  OF_CHECK(!key_pending_) << "dangling Key() at EndObject";
  scopes_.pop_back();
  first_.pop_back();
  os_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  scopes_.push_back(Scope::kArray);
  first_.push_back(true);
  os_ << '[';
}

void JsonWriter::EndArray() {
  OF_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  scopes_.pop_back();
  first_.pop_back();
  os_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  OF_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject)
      << "Key() outside of an object";
  OF_CHECK(!key_pending_) << "two keys in a row";
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  WriteEscaped(key);
  os_ << ':';
  key_pending_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  WriteEscaped(value);
}

void JsonWriter::Int(long long value) {
  BeforeValue();
  os_ << value;
}

void JsonWriter::UInt(unsigned long long value) {
  BeforeValue();
  os_ << value;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    os_ << "null";
    return;
  }
  // Shortest round-trippable representation; %.17g always round-trips and
  // integral values still print compactly enough for bench documents.
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  os_ << buffer;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
}

void JsonWriter::WriteEscaped(std::string_view text) {
  os_ << JsonEscape(text);
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace omnifair
