#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_utils.h"

namespace omnifair {

Result<Dataset> ReadCsv(const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open " + path);

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file " + path);
  }
  std::vector<std::string> header = Split(line, options.delimiter);
  for (std::string& name : header) name = std::string(StripWhitespace(name));

  int label_index = -1;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == options.label_column) label_index = static_cast<int>(i);
  }
  if (label_index < 0) {
    return Status::InvalidArgument("label column '" + options.label_column +
                                   "' not found in " + path);
  }

  // First pass: collect raw cells.
  std::vector<std::vector<std::string>> cells;  // per column
  cells.resize(header.size());
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> fields = Split(stripped, options.delimiter);
    if (fields.size() != header.size()) {
      std::ostringstream msg;
      msg << path << ":" << line_number << ": expected " << header.size()
          << " fields, got " << fields.size();
      return Status::InvalidArgument(msg.str());
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      cells[i].emplace_back(StripWhitespace(fields[i]));
    }
  }

  // Infer column types and build the dataset.
  Dataset dataset(path);
  dataset.set_label_name(options.label_column);
  std::vector<int> labels;
  for (size_t c = 0; c < header.size(); ++c) {
    if (static_cast<int>(c) == label_index) {
      labels.reserve(cells[c].size());
      for (const std::string& cell : cells[c]) {
        if (!options.positive_label_value.empty()) {
          labels.push_back(cell == options.positive_label_value ? 1 : 0);
        } else {
          double value = 0.0;
          if (!ParseDouble(cell, &value) || (value != 0.0 && value != 1.0)) {
            return Status::InvalidArgument("label cell '" + cell +
                                           "' is not 0/1 in " + path);
          }
          labels.push_back(static_cast<int>(value));
        }
      }
      continue;
    }
    bool forced = false;
    for (const std::string& name : options.force_categorical) {
      if (name == header[c]) forced = true;
    }
    bool numeric = !forced;
    if (numeric) {
      for (const std::string& cell : cells[c]) {
        double unused = 0.0;
        if (!ParseDouble(cell, &unused)) {
          numeric = false;
          break;
        }
      }
    }
    if (numeric) {
      Column col = Column::Numeric(header[c]);
      for (const std::string& cell : cells[c]) {
        double value = 0.0;
        ParseDouble(cell, &value);
        col.AppendNumeric(value);
      }
      dataset.AddColumn(std::move(col));
    } else {
      Column col = Column::Categorical(header[c], {});
      for (const std::string& cell : cells[c]) col.AppendCategory(cell);
      dataset.AddColumn(std::move(col));
    }
  }
  dataset.SetLabels(std::move(labels));
  Status status = dataset.Validate();
  if (!status.ok()) return status;
  return dataset;
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path + " for write");

  for (size_t c = 0; c < dataset.NumColumns(); ++c) {
    out << dataset.ColumnAt(c).name() << ",";
  }
  out << dataset.label_name() << "\n";

  for (size_t r = 0; r < dataset.NumRows(); ++r) {
    for (size_t c = 0; c < dataset.NumColumns(); ++c) {
      const Column& col = dataset.ColumnAt(c);
      if (col.type() == ColumnType::kNumeric) {
        out << col.NumericValue(r);
      } else {
        out << col.CategoryOf(r);
      }
      out << ",";
    }
    out << dataset.Label(r) << "\n";
  }
  if (!out) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

}  // namespace omnifair
