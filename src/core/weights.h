#ifndef OMNIFAIR_CORE_WEIGHTS_H_
#define OMNIFAIR_CORE_WEIGHTS_H_

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "core/spec.h"
#include "data/dataset.h"

namespace omnifair {

/// Computes the example weights of Equation (12)/(21):
///
///   w_i(Lambda, h) = 1 + N * sum_j lambda_j * (c_i^{g1_j} - c_i^{g2_j})
///
/// where c_i^{g} is row i's coefficient in constraint j's metric for group g
/// (0 when i is not a member — overlapping groups contribute both terms).
/// The computer is bound to the *training* split: Algorithm 1/2 always
/// reweight training examples, while FP is judged on validation.
///
/// Negative weights are clipped to zero before handing them to a Trainer:
/// the weighted-accuracy objective tolerates negative weights on paper, but
/// real sample_weight hooks (and our trainers' losses) require
/// non-negativity — the same clipping the authors' reference implementation
/// applies for scikit-learn.
class WeightComputer {
 public:
  WeightComputer(std::vector<ConstraintSpec> constraints, const Dataset& train);

  size_t NumConstraints() const { return evaluator_.NumConstraints(); }
  size_t NumExamples() const { return evaluator_.dataset().NumRows(); }

  /// True if any constraint's metric is prediction-parameterized (FOR/FDR),
  /// in which case Compute needs `predictions` of a nearby model on the
  /// training split (the linear-search approximation of §5.2).
  bool DependsOnPredictions() const;

  /// Weights for the hyperparameter vector Lambda (one entry per
  /// constraint). `predictions` may be nullptr iff !DependsOnPredictions()
  /// or Lambda is all zeros.
  std::vector<double> Compute(const std::vector<double>& lambdas,
                              const std::vector<int>* predictions) const;

  /// Single-constraint convenience (Lambda = [lambda]).
  std::vector<double> Compute(double lambda, const std::vector<int>* predictions) const;

  const ConstraintEvaluator& train_evaluator() const { return evaluator_; }

 private:
  /// λ-independent per-constraint axpy terms: (row, signed coefficient)
  /// pairs, group1 members first (+c), then group2 members (−c), in member
  /// order. Compute(λ) then reduces to w[row] += (n·λ)·c over the cached
  /// terms — the same association and summation order as the uncached loop,
  /// so weights are bit-identical. Entries for prediction-parameterized
  /// metrics are rebuilt whenever the supplied predictions differ from the
  /// ones the cache was built with; all other entries are built once.
  struct CacheEntry {
    bool built = false;
    bool depends_on_predictions = false;
    std::vector<std::pair<size_t, double>> terms;
    /// Dense mirror of `terms` (coefficient per row, 0 for non-members) for
    /// the vectorized axpy fast path in Compute. Built only when the terms
    /// cover at least half the rows AND no row repeats across them — each
    /// row then receives exactly one update, so on the scalar backend the
    /// dense pass is bit-identical to the sparse loop (non-member rows add
    /// an exact (n·λ)·0 = +0). Empty means "use the sparse loop".
    std::vector<double> dense;
  };
  struct CoefficientCache {
    bool has_predictions = false;
    std::vector<int> predictions;  // snapshot backing the dependent entries
    std::vector<CacheEntry> entries;
  };

  /// Returns a cache snapshot valid for (lambdas, predictions), building or
  /// rebuilding entries under the mutex when needed. Thread-safe; returned
  /// snapshots are immutable.
  std::shared_ptr<const CoefficientCache> GetCache(
      const std::vector<double>& lambdas,
      const std::vector<int>* predictions) const;

  ConstraintEvaluator evaluator_;
  mutable std::mutex cache_mu_;
  mutable std::shared_ptr<const CoefficientCache> cache_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_WEIGHTS_H_
