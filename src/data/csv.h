#ifndef OMNIFAIR_DATA_CSV_H_
#define OMNIFAIR_DATA_CSV_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace omnifair {

/// Options controlling CSV parsing into a Dataset.
struct CsvReadOptions {
  char delimiter = ',';
  /// Name of the label column (required; parsed as 0/1 or a positive-class
  /// string given below).
  std::string label_column = "label";
  /// If non-empty, label cells equal to this string map to 1, all else to 0.
  std::string positive_label_value;
  /// Columns to parse as categorical even if all cells look numeric.
  std::vector<std::string> force_categorical;
};

/// Reads a CSV file with a header row into a Dataset. Column types are
/// inferred: a column is numeric iff every cell parses as a double (and it is
/// not listed in force_categorical). Cells are not quoted/escaped — the
/// synthetic datasets in this repo never need that.
Result<Dataset> ReadCsv(const std::string& path, const CsvReadOptions& options);

/// Writes a Dataset (attributes + label column) as CSV with a header row.
Status WriteCsv(const Dataset& dataset, const std::string& path);

}  // namespace omnifair

#endif  // OMNIFAIR_DATA_CSV_H_
