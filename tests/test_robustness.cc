// Robustness-layer tests (DESIGN.md §8): exception firewall, divergence
// recovery, train budgets, degenerate-input guards, and CSV hardening. Uses
// the deterministic FaultInjector to force each failure exactly once.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/omnifair.h"
#include "data/csv.h"
#include "data/split.h"
#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "tests/testing_data.h"
#include "tests/testing_fairness.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/train_budget.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

/// A trainer that succeeds `successful_fits` times, then throws.
class ThrowingTrainer : public Trainer {
 public:
  explicit ThrowingTrainer(int successful_fits = 0)
      : successful_fits_(successful_fits) {}

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override {
    if (fits_ >= successful_fits_) throw std::runtime_error("trainer blew up");
    ++fits_;
    return inner_.Fit(X, y, weights);
  }
  using Trainer::Fit;
  std::string Name() const override { return "throwing"; }

 private:
  int successful_fits_;
  int fits_ = 0;
  LogisticRegressionTrainer inner_;
};

/// A trainer that silently returns null instead of a model.
class NullTrainer : public Trainer {
 public:
  std::unique_ptr<Classifier> Fit(const Matrix&, const std::vector<int>&,
                                  const std::vector<double>&) override {
    return nullptr;
  }
  using Trainer::Fit;
  std::string Name() const override { return "null"; }
};

/// Shared end-to-end setup: biased two-group dataset + SP spec.
struct TrainSetup {
  Dataset data;
  TrainValTestSplit split;
  FairnessSpec spec;

  explicit TrainSetup(double rate_a = 0.7, double rate_b = 0.3) {
    data = MakeBiasedDataset(1200, rate_a, rate_b, 7);
    split = SplitDefault(data, 11);
    spec = MakeSpec(GroupByAttribute("grp"), "sp", 0.05);
  }
};

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Reset();
    ResetRecoveryEvents();
  }
  void TearDown() override { FaultInjector::Reset(); }
};

// ---------------------------------------------------------------------------
// Exception firewall
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, ThrowingTrainerFailsCleanly) {
  TrainSetup fx;
  ThrowingTrainer trainer(/*successful_fits=*/0);
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_FALSE(fair.ok());
  EXPECT_EQ(fair.status().code(), StatusCode::kInternal);
  EXPECT_NE(fair.status().message().find("trainer threw"), std::string::npos)
      << fair.status();
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kTrainerException), 1);
}

TEST_F(RobustnessTest, TrainerThrowingMidSearchReturnsBestEffort) {
  TrainSetup fx;
  ThrowingTrainer trainer(/*successful_fits=*/3);
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  ASSERT_NE(fair->model, nullptr);
  EXPECT_EQ(fair->outcome.code(), StatusCode::kInternal) << fair->outcome;
  const std::vector<int> preds = fair->Predict(fx.split.test);
  EXPECT_EQ(preds.size(), fx.split.test.NumRows());
}

TEST_F(RobustnessTest, NullReturningTrainerFailsCleanly) {
  TrainSetup fx;
  NullTrainer trainer;
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_FALSE(fair.ok());
  EXPECT_EQ(fair.status().code(), StatusCode::kInternal);
  EXPECT_NE(fair.status().message().find("null model"), std::string::npos)
      << fair.status();
}

TEST_F(RobustnessTest, ThrowingGroupingFailsSpecInduction) {
  TrainSetup fx;
  fx.spec.grouping = [](const Dataset&) -> GroupMap {
    throw std::runtime_error("grouping blew up");
  };
  LogisticRegressionTrainer trainer;
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_FALSE(fair.ok());
  EXPECT_EQ(fair.status().code(), StatusCode::kInternal);
  EXPECT_NE(fair.status().message().find("grouping callable threw"),
            std::string::npos)
      << fair.status();
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kGroupingException), 1);
}

TEST_F(RobustnessTest, GroupingThrowingOnSmallSplitSkipsConstraint) {
  // Throws on the validation split (240 rows) but works on the training
  // split (720 rows): constraint induction succeeds, the val evaluator
  // firewalls the throw and skips the constraint instead of crashing.
  TrainSetup fx;
  const GroupingFunction by_grp = GroupByAttribute("grp");
  fx.spec.grouping = [by_grp](const Dataset& dataset) -> GroupMap {
    if (dataset.NumRows() < 600) throw std::runtime_error("val-split only");
    return by_grp(dataset);
  };
  LogisticRegressionTrainer trainer;
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  ASSERT_NE(fair->model, nullptr);
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kGroupingException), 1);
}

// ---------------------------------------------------------------------------
// Train budget
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, DeadlineExpiryReturnsBestEffortModel) {
  TrainSetup fx;
  LogisticRegressionTrainer trainer;
  OmniFairOptions options;
  options.budget.deadline_seconds = 5.0;
  FaultInjector::AdvanceClock(10.0);  // virtual: already past the deadline
  OmniFair omnifair(options);
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  ASSERT_NE(fair->model, nullptr);
  EXPECT_EQ(fair->outcome.code(), StatusCode::kDeadlineExceeded) << fair->outcome;
  // Only the initial fit runs before the first budget poll.
  EXPECT_LE(fair->models_trained, 2);
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kBudgetExpired), 1);
}

TEST_F(RobustnessTest, ModelCapReturnsBestEffortSingleConstraint) {
  TrainSetup fx;
  LogisticRegressionTrainer trainer;
  OmniFairOptions options;
  options.budget.max_models = 1;
  OmniFair omnifair(options);
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  ASSERT_NE(fair->model, nullptr);
  EXPECT_EQ(fair->outcome.code(), StatusCode::kDeadlineExceeded) << fair->outcome;
  // The base model answers the fallback, so the cap holds exactly.
  EXPECT_EQ(fair->models_trained, 1);
}

TEST_F(RobustnessTest, ModelCapReturnsBestEffortHillClimb) {
  TrainSetup fx;
  FairnessSpec mr_spec = MakeSpec(GroupByAttribute("grp"), "mr", 0.05);
  LogisticRegressionTrainer trainer;
  OmniFairOptions options;
  options.budget.max_models = 2;
  OmniFair omnifair(options);
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer,
                             {fx.spec, mr_spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  ASSERT_NE(fair->model, nullptr);
  if (!fair->satisfied) {
    EXPECT_EQ(fair->outcome.code(), StatusCode::kDeadlineExceeded) << fair->outcome;
  }
  // Budget semantics: at most one mandatory fallback fit past the cap.
  EXPECT_LE(fair->models_trained, 3);
}

TEST_F(RobustnessTest, UnlimitedBudgetOutcomeStaysOk) {
  TrainSetup fx;
  LogisticRegressionTrainer trainer;
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_TRUE(fair->outcome.ok()) << fair->outcome;
  EXPECT_EQ(RecoveryEventCount(RecoveryEvent::kBudgetExpired), 0);
}

TEST_F(RobustnessTest, TrainBudgetUnitSemantics) {
  TrainBudget unlimited;
  EXPECT_FALSE(unlimited.limited());
  EXPECT_FALSE(unlimited.Expired());
  EXPECT_TRUE(unlimited.ToStatus().ok());

  TrainBudgetOptions capped;
  capped.max_models = 2;
  TrainBudget budget(capped);
  EXPECT_TRUE(budget.limited());
  EXPECT_FALSE(budget.Expired());
  budget.NoteModelTrained();
  budget.NoteModelTrained();
  EXPECT_TRUE(budget.Expired());
  const Status status = budget.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.ToString().find("DEADLINE_EXCEEDED"), std::string::npos);

  TrainBudgetOptions timed;
  timed.deadline_seconds = 100.0;
  TrainBudget deadline(timed);
  EXPECT_FALSE(deadline.Expired());
  FaultInjector::AdvanceClock(200.0);
  EXPECT_TRUE(deadline.Expired());
}

// ---------------------------------------------------------------------------
// Non-finite metric and weight guards
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, NanMetricNeverReachesTheTuner) {
  TrainSetup fx;
  FaultInjector::Arm(fault_sites::kFairnessPart, /*fire_at=*/1);
  LogisticRegressionTrainer trainer;
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  for (double part : fair->val_fairness_parts) {
    EXPECT_TRUE(std::isfinite(part)) << part;
  }
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kNonFiniteMetric), 1);
}

TEST_F(RobustnessTest, EmptyGroupMetricContributesZero) {
  const Dataset data = MakeBiasedDataset(50, 0.5, 0.5, 3);
  const std::vector<int> preds(50, 1);
  const std::vector<size_t> empty_group;
  for (const char* name : {"sp", "mr"}) {
    const auto metric = MakeMetricByName(name);
    EXPECT_EQ(metric->Evaluate(data, empty_group, preds), 0.0) << name;
  }
  const AverageErrorCostMetric aec(2.0, 1.0);
  EXPECT_EQ(aec.Evaluate(data, empty_group, preds), 0.0);
}

TEST_F(RobustnessTest, SingleClassLabelsWithFprSpecTrainCleanly) {
  // All labels positive: FPR has an empty denominator in every group; the
  // convention makes both parts 0, so the constraint holds trivially.
  TrainSetup fx(/*rate_a=*/1.0, /*rate_b=*/1.0);
  fx.spec = MakeSpec(GroupByAttribute("grp"), "fpr", 0.05);
  LogisticRegressionTrainer trainer;
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  EXPECT_TRUE(fair->satisfied);
  EXPECT_EQ(fair->val_fairness_parts[0], 0.0);
}

TEST_F(RobustnessTest, NonFiniteWeightsAreClampedBeforeTheTrainer) {
  TrainSetup fx;
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(fx.split.train, fx.split.val, {fx.spec},
                                         &trainer);
  ASSERT_TRUE(problem.ok()) << problem.status();
  std::vector<double> weights((*problem)->train().NumRows(), 1.0);
  weights[0] = std::nan("");
  weights[1] = std::numeric_limits<double>::infinity();
  auto model = (*problem)->FitWithWeights(weights);
  ASSERT_NE(model, nullptr) << (*problem)->last_fit_status();
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kNonFiniteWeight), 1);
  for (double p : model->PredictProba((*problem)->train_features())) {
    EXPECT_TRUE(std::isfinite(p));
  }
}

// ---------------------------------------------------------------------------
// Trainer divergence recovery
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, LogisticRegressionRecoversFromDivergence) {
  const auto blobs = testing_data::MakeBlobs(400, 2.0, 17);
  FaultInjector::Arm(fault_sites::kLrDescend, /*fire_at=*/5);
  LogisticRegressionTrainer trainer;
  auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  ASSERT_NE(model, nullptr);
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kDivergenceBackoff), 1);
  const auto* lr = dynamic_cast<const LogisticRegressionModel*>(model.get());
  ASSERT_NE(lr, nullptr);
  for (double c : lr->coefficients()) EXPECT_TRUE(std::isfinite(c)) << c;
  EXPECT_TRUE(std::isfinite(lr->intercept()));
  // Recovery must not cost model quality on separable data.
  EXPECT_GT(testing_data::TrainAccuracy(*model, blobs), 0.9);
}

TEST_F(RobustnessTest, LogisticRegressionGivesUpAfterRetryCap) {
  const auto blobs = testing_data::MakeBlobs(200, 2.0, 17);
  FaultInjector::Arm(fault_sites::kLrDescend, /*fire_at=*/1, /*repeat=*/true);
  LogisticRegressionTrainer trainer;
  auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  ASSERT_NE(model, nullptr);  // checkpoint model, never a crash
  EXPECT_EQ(RecoveryEventCount(RecoveryEvent::kDivergenceBackoff), 3);
  const auto* lr = dynamic_cast<const LogisticRegressionModel*>(model.get());
  ASSERT_NE(lr, nullptr);
  for (double c : lr->coefficients()) EXPECT_TRUE(std::isfinite(c)) << c;
}

TEST_F(RobustnessTest, MlpRecoversFromDivergence) {
  const auto blobs = testing_data::MakeBlobs(300, 2.0, 19);
  FaultInjector::Arm(fault_sites::kMlpEpoch, /*fire_at=*/3);
  MlpOptions options;
  options.max_epochs = 40;
  MlpTrainer trainer(options);
  auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  ASSERT_NE(model, nullptr);
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kDivergenceBackoff), 1);
  for (double p : model->PredictProba(blobs.X)) {
    ASSERT_TRUE(std::isfinite(p)) << p;
  }
}

TEST_F(RobustnessTest, GbdtDropsDivergedRoundAndContinues) {
  const auto blobs = testing_data::MakeBlobs(300, 2.0, 23);
  FaultInjector::Arm(fault_sites::kGbdtRound, /*fire_at=*/2);
  GbdtOptions options;
  options.num_rounds = 10;
  GbdtTrainer trainer(options);
  auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  ASSERT_NE(model, nullptr);
  EXPECT_GE(RecoveryEventCount(RecoveryEvent::kDivergenceBackoff), 1);
  const auto* gbdt = dynamic_cast<const GbdtModel*>(model.get());
  ASSERT_NE(gbdt, nullptr);
  EXPECT_EQ(gbdt->NumTrees(), 9u);  // the diverged round's tree was dropped
  for (double p : model->PredictProba(blobs.X)) {
    ASSERT_TRUE(std::isfinite(p)) << p;
  }
}

TEST_F(RobustnessTest, TrainSurvivesInjectedTrainerDivergence) {
  TrainSetup fx;
  FaultInjector::Arm(fault_sites::kLrDescend, /*fire_at=*/10, /*repeat=*/true);
  LogisticRegressionTrainer trainer;
  OmniFair omnifair;
  auto fair = omnifair.Train(fx.split.train, fx.split.val, &trainer, {fx.spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  ASSERT_NE(fair->model, nullptr);
  for (double part : fair->val_fairness_parts) {
    EXPECT_TRUE(std::isfinite(part)) << part;
  }
}

// ---------------------------------------------------------------------------
// Degenerate training inputs
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, AllZeroWeightsProduceFiniteModels) {
  const auto blobs = testing_data::MakeBlobs(120, 2.0, 29);
  const std::vector<double> zeros(blobs.y.size(), 0.0);
  LogisticRegressionTrainer lr;
  MlpOptions mlp_options;
  mlp_options.max_epochs = 10;
  MlpTrainer nn(mlp_options);
  GbdtOptions gbdt_options;
  gbdt_options.num_rounds = 5;
  GbdtTrainer xgb(gbdt_options);
  for (Trainer* trainer : {static_cast<Trainer*>(&lr), static_cast<Trainer*>(&nn),
                           static_cast<Trainer*>(&xgb)}) {
    auto model = trainer->Fit(blobs.X, blobs.y, zeros);
    ASSERT_NE(model, nullptr) << trainer->Name();
    for (double p : model->PredictProba(blobs.X)) {
      ASSERT_TRUE(std::isfinite(p)) << trainer->Name();
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0);
    }
  }
}

TEST_F(RobustnessTest, ConstantFeaturesTrainCleanly) {
  Dataset data("constant_features");
  Column grp = Column::Categorical("grp", {"a", "b"});
  Column constant = Column::Numeric("flat");
  std::vector<int> labels;
  for (size_t i = 0; i < 400; ++i) {
    grp.AppendCode(static_cast<int>(i % 2));
    constant.AppendNumeric(3.5);
    labels.push_back(i % 3 == 0 ? 1 : 0);
  }
  data.AddColumn(std::move(grp));
  data.AddColumn(std::move(constant));
  data.SetLabels(std::move(labels));

  const TrainValTestSplit split = SplitDefault(data, 5);
  const FairnessSpec spec = MakeSpec(GroupByAttribute("grp"), "sp", 0.05);
  LogisticRegressionTrainer trainer;
  OmniFair omnifair;
  auto fair = omnifair.Train(split.train, split.val, &trainer, {spec});
  ASSERT_TRUE(fair.ok()) << fair.status();
  for (double p : fair->PredictProba(split.test)) {
    ASSERT_TRUE(std::isfinite(p)) << p;
  }
}

// ---------------------------------------------------------------------------
// FaultInjector itself
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, FaultInjectorFiresOnTheNthCall) {
  FaultInjector::Arm("test.site", /*fire_at=*/3);
  EXPECT_FALSE(FaultInjector::ShouldFail("test.site"));
  EXPECT_FALSE(FaultInjector::ShouldFail("test.site"));
  EXPECT_TRUE(FaultInjector::ShouldFail("test.site"));
  EXPECT_FALSE(FaultInjector::ShouldFail("test.site"));  // one-shot
  EXPECT_EQ(FaultInjector::CallCount("test.site"), 4);

  FaultInjector::Arm("test.repeat", /*fire_at=*/2, /*repeat=*/true);
  EXPECT_FALSE(FaultInjector::ShouldFail("test.repeat"));
  EXPECT_TRUE(FaultInjector::ShouldFail("test.repeat"));
  EXPECT_TRUE(FaultInjector::ShouldFail("test.repeat"));

  EXPECT_FALSE(FaultInjector::ShouldFail("never.armed"));
  EXPECT_EQ(FaultInjector::CallCount("never.armed"), 0);

  EXPECT_EQ(FaultInjector::CorruptDouble("never.armed", 1.5), 1.5);
  FaultInjector::Arm("test.corrupt");
  EXPECT_TRUE(std::isnan(FaultInjector::CorruptDouble("test.corrupt", 1.5)));
  EXPECT_EQ(FaultInjector::CorruptDouble("test.corrupt", 1.5), 1.5);

  FaultInjector::AdvanceClock(2.5);
  EXPECT_DOUBLE_EQ(FaultInjector::ClockSkewSeconds(), 2.5);
  FaultInjector::Reset();
  EXPECT_DOUBLE_EQ(FaultInjector::ClockSkewSeconds(), 0.0);
  EXPECT_FALSE(FaultInjector::ShouldFail("test.repeat"));
}

TEST_F(RobustnessTest, RecoveryEventSummaryFormats) {
  EXPECT_EQ(RecoveryEventSummary(), "none");
  CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
  CountRecoveryEvent(RecoveryEvent::kDivergenceBackoff);
  const std::string summary = RecoveryEventSummary();
  EXPECT_NE(summary.find("divergence_backoff=2"), std::string::npos) << summary;
}

// ---------------------------------------------------------------------------
// CSV hardening
// ---------------------------------------------------------------------------

class CsvRobustnessTest : public RobustnessTest {
 protected:
  std::string WriteFile(const std::string& name, const std::string& content) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path);
    out << content;
    return path;
  }
};

TEST_F(CsvRobustnessTest, RaggedRowNamesTheLine) {
  const std::string path =
      WriteFile("ragged.csv", "a,b,label\n1,2,1\n1,2,3,0\n");
  auto dataset = ReadCsv(path, {});
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dataset.status().message().find(":3:"), std::string::npos)
      << dataset.status();
}

TEST_F(CsvRobustnessTest, UnterminatedQuoteNamesTheLine) {
  const std::string path =
      WriteFile("unterminated.csv", "a,b,label\n1,\"oops,1\n");
  auto dataset = ReadCsv(path, {});
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dataset.status().message().find("unterminated"), std::string::npos)
      << dataset.status();
  EXPECT_NE(dataset.status().message().find(":2:"), std::string::npos)
      << dataset.status();
}

TEST_F(CsvRobustnessTest, QuotedDelimiterAndEscapedQuoteParse) {
  const std::string path = WriteFile(
      "quoted.csv", "city,b,label\n\"Portland, OR\",1,1\n\"say \"\"hi\"\"\",2,0\n");
  auto dataset = ReadCsv(path, {});
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->NumRows(), 2u);
  const Column& city = dataset->ColumnAt(0);
  EXPECT_EQ(city.type(), ColumnType::kCategorical);
  EXPECT_EQ(city.CategoryOf(0), "Portland, OR");
  EXPECT_EQ(city.CategoryOf(1), "say \"hi\"");
}

TEST_F(CsvRobustnessTest, ForceNumericRejectsBadCellWithRowNumber) {
  const std::string path =
      WriteFile("force_numeric.csv", "age,label\n31,1\n\nabc,0\n");
  CsvReadOptions options;
  options.force_numeric = {"age"};
  auto dataset = ReadCsv(path, options);
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
  // The blank line is skipped; the offending row is physical line 4.
  EXPECT_NE(dataset.status().message().find(":4:"), std::string::npos)
      << dataset.status();
  EXPECT_NE(dataset.status().message().find("age"), std::string::npos)
      << dataset.status();
}

TEST_F(CsvRobustnessTest, ForceNumericRejectsNonFiniteCell) {
  const std::string path = WriteFile("nan_cell.csv", "age,label\n31,1\nnan,0\n");
  CsvReadOptions options;
  options.force_numeric = {"age"};
  auto dataset = ReadCsv(path, options);
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dataset.status().message().find(":3:"), std::string::npos)
      << dataset.status();
}

TEST_F(CsvRobustnessTest, InferredNonFiniteCellDemotesToCategorical) {
  const std::string path = WriteFile("inferred.csv", "age,label\n31,1\nnan,0\n");
  auto dataset = ReadCsv(path, {});
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->ColumnAt(0).type(), ColumnType::kCategorical);
}

TEST_F(CsvRobustnessTest, BadLabelNamesTheLine) {
  const std::string path = WriteFile("label.csv", "a,label\n1,1\n2,yes\n");
  auto dataset = ReadCsv(path, {});
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dataset.status().message().find(":3:"), std::string::npos)
      << dataset.status();
}

TEST_F(CsvRobustnessTest, ConflictingForceListsAreRejected) {
  const std::string path = WriteFile("conflict.csv", "a,label\n1,1\n");
  CsvReadOptions options;
  options.force_numeric = {"a"};
  options.force_categorical = {"a"};
  auto dataset = ReadCsv(path, options);
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace omnifair
