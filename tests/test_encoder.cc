#include "data/encoder.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace omnifair {
namespace {

Dataset ToyDataset() {
  Dataset d("toy");
  Column age = Column::Numeric("age");
  Column g = Column::Categorical("g", {"a", "b", "c"});
  const double ages[] = {10.0, 20.0, 30.0, 40.0};
  const int codes[] = {0, 1, 2, 0};
  for (int i = 0; i < 4; ++i) {
    age.AppendNumeric(ages[i]);
    g.AppendCode(codes[i]);
  }
  d.AddColumn(std::move(age));
  d.AddColumn(std::move(g));
  d.SetLabels({0, 1, 0, 1});
  return d;
}

TEST(EncoderTest, FeatureLayout) {
  FeatureEncoder encoder;
  encoder.Fit(ToyDataset());
  // 1 numeric + 3 one-hot.
  EXPECT_EQ(encoder.NumFeatures(), 4u);
  EXPECT_EQ(encoder.feature_names()[0], "age");
  EXPECT_EQ(encoder.feature_names()[1], "g=a");
  EXPECT_EQ(encoder.feature_names()[3], "g=c");
}

TEST(EncoderTest, StandardizesNumeric) {
  FeatureEncoder encoder;
  const Dataset d = ToyDataset();
  const Matrix X = encoder.FitTransform(d);
  double mean = 0.0;
  for (size_t r = 0; r < 4; ++r) mean += X(r, 0);
  mean /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  double var = 0.0;
  for (size_t r = 0; r < 4; ++r) var += X(r, 0) * X(r, 0);
  EXPECT_NEAR(var / 4.0, 1.0, 1e-12);
}

TEST(EncoderTest, OneHotCorrect) {
  FeatureEncoder encoder;
  const Dataset d = ToyDataset();
  const Matrix X = encoder.FitTransform(d);
  // Row 1 is category "b" -> column 2 set.
  EXPECT_DOUBLE_EQ(X(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(X(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(X(1, 3), 0.0);
}

TEST(EncoderTest, TransformUsesTrainStatistics) {
  FeatureEncoder encoder;
  const Dataset train = ToyDataset();
  encoder.Fit(train);
  // A "validation" dataset with different values must use train's mean/std.
  Dataset val("toy");
  Column age = Column::Numeric("age");
  Column g = Column::Categorical("g", {"a", "b", "c"});
  age.AppendNumeric(25.0);  // train mean -> 0
  g.AppendCode(1);
  val.AddColumn(std::move(age));
  val.AddColumn(std::move(g));
  val.SetLabels({0});
  const Matrix X = encoder.Transform(val);
  EXPECT_NEAR(X(0, 0), 0.0, 1e-12);
}

TEST(EncoderTest, DropColumns) {
  FeatureEncoder encoder;
  EncoderOptions options;
  options.drop_columns = {"g"};
  encoder.Fit(ToyDataset(), options);
  EXPECT_EQ(encoder.NumFeatures(), 1u);
  EXPECT_EQ(encoder.feature_names()[0], "age");
}

TEST(EncoderTest, NoStandardization) {
  FeatureEncoder encoder;
  EncoderOptions options;
  options.standardize_numeric = false;
  const Matrix X = encoder.FitTransform(ToyDataset(), options);
  EXPECT_DOUBLE_EQ(X(0, 0), 10.0);
}

TEST(EncoderTest, ConstantColumnDoesNotDivideByZero) {
  Dataset d("const");
  Column c = Column::Numeric("c");
  for (int i = 0; i < 3; ++i) c.AppendNumeric(5.0);
  d.AddColumn(std::move(c));
  d.SetLabels({0, 1, 0});
  FeatureEncoder encoder;
  const Matrix X = encoder.FitTransform(d);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(std::isfinite(X(r, 0)));
    EXPECT_DOUBLE_EQ(X(r, 0), 0.0);
  }
}

TEST(EncoderTest, IntegerCodesWithoutOneHot) {
  FeatureEncoder encoder;
  EncoderOptions options;
  options.one_hot_categorical = false;
  const Matrix X = encoder.FitTransform(ToyDataset(), options);
  EXPECT_EQ(encoder.NumFeatures(), 2u);
  EXPECT_DOUBLE_EQ(X(2, 1), 2.0);  // raw code of "c"
}

TEST(EncoderTest, Float32FeaturesNarrowStorageOnly) {
  const Dataset d = ToyDataset();
  FeatureEncoder f64;
  const Matrix Xd = f64.FitTransform(d);
  FeatureEncoder f32;
  EncoderOptions options;
  options.float32_features = true;
  const Matrix Xf = f32.FitTransform(d, options);
  EXPECT_TRUE(Xf.is_float32());
  ASSERT_EQ(Xf.rows(), Xd.rows());
  ASSERT_EQ(Xf.cols(), Xd.cols());
  for (size_t r = 0; r < Xd.rows(); ++r) {
    for (size_t c = 0; c < Xd.cols(); ++c) {
      // Each element is exactly the double encoding narrowed once to float.
      EXPECT_DOUBLE_EQ(Xf(r, c),
                       static_cast<double>(static_cast<float>(Xd(r, c))));
    }
  }
}

TEST(EncoderTest, Float32OptionDoesNotChangeSerialization) {
  EncoderOptions options;
  options.float32_features = true;
  FeatureEncoder f32;
  f32.Fit(ToyDataset(), options);
  std::ostringstream with_flag;
  f32.SerializeTo(with_flag);
  FeatureEncoder plain;
  plain.Fit(ToyDataset());
  std::ostringstream without_flag;
  plain.SerializeTo(without_flag);
  EXPECT_EQ(with_flag.str(), without_flag.str());
}

}  // namespace
}  // namespace omnifair
