#ifndef OMNIFAIR_ML_MLP_H_
#define OMNIFAIR_ML_MLP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace omnifair {

/// Hyperparameters for the multilayer perceptron.
struct MlpOptions {
  int hidden_units = 16;
  int max_epochs = 150;
  double learning_rate = 0.05;  // Adam step size
  double l2 = 1e-4;
  /// Convergence threshold on relative loss improvement per epoch.
  double tolerance = 1e-6;
  uint64_t seed = 23;
  /// Divergence recovery (DESIGN.md §8): on a non-finite epoch loss the
  /// parameters roll back to the last finite checkpoint, the Adam moments
  /// reset and the learning rate halves, at most this many times before the
  /// checkpoint model is returned as-is.
  int max_divergence_retries = 3;
  /// Mini-batch Adam (DESIGN.md §16): 0 keeps the exact full-batch path
  /// (bit-identical to the default trainer); any positive value switches to
  /// weighted mini-batch Adam over contiguous batches of this many rows in a
  /// deterministic per-epoch shuffle forked from `seed`. Updates are applied
  /// serially, so results are bit-reproducible at any thread count.
  size_t batch_size = 0;
  /// Epochs (full passes over the data) for the mini-batch path; the
  /// full-batch path uses max_epochs instead.
  int epochs = 5;
  /// Per-batch step-size decay for the mini-batch path.
  LrSchedule lr_schedule = LrSchedule::kConstant;
};

/// A trained one-hidden-layer MLP: p = sigmoid(w2 . relu(W1 x + b1) + b2).
class MlpModel : public Classifier {
 public:
  MlpModel(Matrix W1, std::vector<double> b1, std::vector<double> w2, double b2);

  std::vector<double> PredictProba(const Matrix& X) const override;
  std::string Name() const override { return "mlp"; }

  const Matrix& W1() const { return W1_; }
  const std::vector<double>& b1() const { return b1_; }
  const std::vector<double>& w2() const { return w2_; }
  double b2() const { return b2_; }

 private:
  Matrix W1_;               // hidden x input
  std::vector<double> b1_;  // hidden
  std::vector<double> w2_;  // hidden
  double b2_;
};

/// Weighted neural network trained with full-batch Adam on the weighted
/// cross-entropy — the "NN" column of the paper's Table 5. Supports warm
/// starts like the LR trainer (the paper notes the warm-start optimization
/// "is also applicable to NN").
class MlpTrainer : public Trainer {
 public:
  explicit MlpTrainer(MlpOptions options = {});

  std::unique_ptr<Classifier> Fit(const Matrix& X, const std::vector<int>& y,
                                  const std::vector<double>& weights) override;
  using Trainer::Fit;

  std::string Name() const override { return "mlp"; }
  std::unique_ptr<Trainer> Clone() const override {
    return std::make_unique<MlpTrainer>(options_);
  }
  bool SupportsWarmStart() const override { return true; }
  void SetWarmStart(bool enabled) override { warm_start_ = enabled; }
  void ResetWarmStart() override { warm_params_.clear(); }

 private:
  /// Weighted mini-batch Adam path (options_.batch_size > 0); same divergence
  /// rollback/backoff semantics as the full-batch loop, with the Adam bias
  /// correction driven by the global batch counter instead of the epoch.
  std::unique_ptr<Classifier> FitMiniBatch(const Matrix& X,
                                           const std::vector<int>& y,
                                           const std::vector<double>& weights,
                                           std::vector<double> params);

  MlpOptions options_;
  bool warm_start_ = false;
  std::vector<double> warm_params_;  // flat parameter vector
};

}  // namespace omnifair

#endif  // OMNIFAIR_ML_MLP_H_
