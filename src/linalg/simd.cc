#include "linalg/simd.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string>

#include "util/logging.h"
#include "util/telemetry.h"

// Backend availability is a compile-time property (CMake sets
// OMNIFAIR_SIMD_X86 / OMNIFAIR_SIMD_NEON per architecture when
// OMNIFAIR_ENABLE_SIMD is on) plus a runtime CPU check on x86. The AVX2
// implementations use function multiversioning (`target` attribute), so no
// global -mavx2 flag is needed and the rest of the library stays baseline.
#if defined(OMNIFAIR_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
#define OMNIFAIR_HAVE_AVX2_IMPL 1
#include <immintrin.h>
#endif
#if defined(OMNIFAIR_SIMD_NEON) && defined(__ARM_NEON)
#define OMNIFAIR_HAVE_NEON_IMPL 1
#include <arm_neon.h>
#endif

namespace omnifair {
namespace simd {
namespace {

double ScalarSigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

// ---------------------------------------------------------------------------
// Portable fallback: unrolled scalar loops. Dot/Sum use independent
// accumulators to break the loop-carried add dependency; Axpy/Scale are
// elementwise so unrolling only widens the scheduler window.
// ---------------------------------------------------------------------------
namespace scalar {

double Dot(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(double s, const double* b, double* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] += s * b[i];
    a[i + 1] += s * b[i + 1];
    a[i + 2] += s * b[i + 2];
    a[i + 3] += s * b[i + 3];
  }
  for (; i < n; ++i) a[i] += s * b[i];
}

void Scale(double s, double* v, size_t n) {
  for (size_t i = 0; i < n; ++i) v[i] *= s;
}

double Sum(const double* v, size_t n) {
  // Single accumulator: keeps Sum() bit-identical to the pre-SIMD library
  // for the metric/means call sites that historically used it.
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

double DotSigmoid(const double* a, const double* b, size_t n, double bias) {
  return ScalarSigmoid(bias + Dot(a, b, n));
}

void SigmoidInPlace(double* v, size_t n) {
  for (size_t i = 0; i < n; ++i) v[i] = ScalarSigmoid(v[i]);
}

void SoftmaxRows(double* m, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    double* row = m + r * cols;
    double mx = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < cols; ++c) mx = std::max(mx, row[c]);
    double total = 0.0;
    for (size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      total += row[c];
    }
    const double inv = 1.0 / total;
    for (size_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

double DotF32(const float* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(a[i]) * b[i];
    acc1 += static_cast<double>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<double>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

void AxpyF32(double s, const float* b, double* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] += s * static_cast<double>(b[i]);
    a[i + 1] += s * static_cast<double>(b[i + 1]);
    a[i + 2] += s * static_cast<double>(b[i + 2]);
    a[i + 3] += s * static_cast<double>(b[i + 3]);
  }
  for (; i < n; ++i) a[i] += s * static_cast<double>(b[i]);
}

double DotSigmoidF32(const float* a, const double* b, size_t n, double bias) {
  return ScalarSigmoid(bias + DotF32(a, b, n));
}

}  // namespace scalar

constexpr Kernels kScalarTable = {
    scalar::Dot,           scalar::Axpy,          scalar::Scale,
    scalar::Sum,           scalar::DotSigmoid,    scalar::SigmoidInPlace,
    scalar::SoftmaxRows,   scalar::DotF32,        scalar::AxpyF32,
    scalar::DotSigmoidF32,
};

// ---------------------------------------------------------------------------
// AVX2 + FMA backend (x86-64). 256-bit lanes, 4 doubles per vector; the
// reductions run four vectors deep to saturate the FMA pipes. exp() is a
// Cephes-style degree-2/3 rational polynomial after range reduction —
// accurate to ~1-2 ulp over the clamped range, which is why the sigmoid
// parity contract is tolerance-based rather than bitwise.
// ---------------------------------------------------------------------------
#if OMNIFAIR_HAVE_AVX2_IMPL
namespace avx2 {

#define OMNIFAIR_AVX2 __attribute__((target("avx2,fma")))

OMNIFAIR_AVX2 inline double ReduceAdd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

OMNIFAIR_AVX2 double Dot(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4),
                           acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8),
                           acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
  }
  double acc =
      ReduceAdd(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

OMNIFAIR_AVX2 void Axpy(double s, const double* b, double* a, size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        a + i, _mm256_fmadd_pd(vs, _mm256_loadu_pd(b + i), _mm256_loadu_pd(a + i)));
    _mm256_storeu_pd(a + i + 4,
                     _mm256_fmadd_pd(vs, _mm256_loadu_pd(b + i + 4),
                                     _mm256_loadu_pd(a + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_fmadd_pd(vs, _mm256_loadu_pd(b + i), _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) a[i] += s * b[i];
}

OMNIFAIR_AVX2 void Scale(double s, double* v, size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(vs, _mm256_loadu_pd(v + i)));
  }
  for (; i < n; ++i) v[i] *= s;
}

OMNIFAIR_AVX2 double Sum(const double* v, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(v + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(v + i + 4));
  }
  for (; i + 4 <= n; i += 4) acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(v + i));
  double acc = ReduceAdd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += v[i];
  return acc;
}

/// exp(x) for four lanes, Cephes-style: n = round(x * log2 e), r = x - n ln 2
/// (split-constant reduction), exp(r) via a rational polynomial, then scale
/// by 2^n through direct exponent-bit construction. Inputs are clamped to
/// [-708, 709] so 2^n stays inside the normal range; for the sigmoid callers
/// the clamp only affects probabilities below ~1e-307.
OMNIFAIR_AVX2 inline __m256d Exp(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d p0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d p1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d p2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d q0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d q1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d q2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d q3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d one = _mm256_set1_pd(1.0);

  x = _mm256_min_pd(_mm256_max_pd(x, _mm256_set1_pd(-708.0)),
                    _mm256_set1_pd(709.0));
  const __m256d nf =
      _mm256_floor_pd(_mm256_fmadd_pd(log2e, x, _mm256_set1_pd(0.5)));
  x = _mm256_fnmadd_pd(nf, ln2_hi, x);
  x = _mm256_fnmadd_pd(nf, ln2_lo, x);

  const __m256d xx = _mm256_mul_pd(x, x);
  __m256d px = _mm256_fmadd_pd(p0, xx, p1);
  px = _mm256_fmadd_pd(px, xx, p2);
  px = _mm256_mul_pd(px, x);
  __m256d qx = _mm256_fmadd_pd(q0, xx, q1);
  qx = _mm256_fmadd_pd(qx, xx, q2);
  qx = _mm256_fmadd_pd(qx, xx, q3);
  // exp(r) = 1 + 2 r P(r^2) / (Q(r^2) - r P(r^2))
  __m256d e = _mm256_div_pd(px, _mm256_sub_pd(qx, px));
  e = _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), one);

  __m256i n64 = _mm256_cvtepi32_epi64(_mm256_cvttpd_epi32(nf));
  n64 = _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(n64));
}

/// Branch-free stable sigmoid: t = exp(-|z|), then 1/(1+t) for z >= 0 and
/// t/(1+t) otherwise — the same two-sided form as the scalar Sigmoid().
OMNIFAIR_AVX2 inline __m256d Sigmoid(__m256d z) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sign_bit = _mm256_set1_pd(-0.0);
  const __m256d neg_abs = _mm256_or_pd(_mm256_andnot_pd(sign_bit, z), sign_bit);
  const __m256d t = Exp(neg_abs);
  const __m256d ge = _mm256_cmp_pd(z, _mm256_setzero_pd(), _CMP_GE_OQ);
  const __m256d num = _mm256_blendv_pd(t, one, ge);
  return _mm256_div_pd(num, _mm256_add_pd(one, t));
}

OMNIFAIR_AVX2 void SigmoidInPlace(double* v, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, Sigmoid(_mm256_loadu_pd(v + i)));
  }
  for (; i < n; ++i) v[i] = ScalarSigmoid(v[i]);
}

OMNIFAIR_AVX2 double DotSigmoid(const double* a, const double* b, size_t n,
                                double bias) {
  return ScalarSigmoid(bias + Dot(a, b, n));
}

OMNIFAIR_AVX2 void SoftmaxRows(double* m, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    double* row = m + r * cols;
    double mx = -std::numeric_limits<double>::infinity();
    {
      __m256d vmax = _mm256_set1_pd(mx);
      size_t c = 0;
      for (; c + 4 <= cols; c += 4) {
        vmax = _mm256_max_pd(vmax, _mm256_loadu_pd(row + c));
      }
      __m128d pair = _mm_max_pd(_mm256_castpd256_pd128(vmax),
                                _mm256_extractf128_pd(vmax, 1));
      mx = _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
      for (; c < cols; ++c) mx = std::max(mx, row[c]);
    }
    const __m256d vmx = _mm256_set1_pd(mx);
    __m256d vsum = _mm256_setzero_pd();
    size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m256d e = Exp(_mm256_sub_pd(_mm256_loadu_pd(row + c), vmx));
      _mm256_storeu_pd(row + c, e);
      vsum = _mm256_add_pd(vsum, e);
    }
    double total = ReduceAdd(vsum);
    for (; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      total += row[c];
    }
    Scale(1.0 / total, row, cols);
  }
}

OMNIFAIR_AVX2 double DotF32(const float* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Widen 8 floats to 2x4 doubles; the products/accumulators stay double.
    const __m256 f = _mm256_loadu_ps(a + i);
    acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(f)),
                           _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(f, 1)),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                           _mm256_loadu_pd(b + i), acc0);
  }
  double acc = ReduceAdd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

OMNIFAIR_AVX2 void AxpyF32(double s, const float* b, double* a, size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(a + i,
                     _mm256_fmadd_pd(vs, _mm256_cvtps_pd(_mm_loadu_ps(b + i)),
                                     _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) a[i] += s * static_cast<double>(b[i]);
}

OMNIFAIR_AVX2 double DotSigmoidF32(const float* a, const double* b, size_t n,
                                   double bias) {
  return ScalarSigmoid(bias + DotF32(a, b, n));
}

#undef OMNIFAIR_AVX2

}  // namespace avx2

const Kernels kAvx2Table = {
    avx2::Dot,           avx2::Axpy,          avx2::Scale,
    avx2::Sum,           avx2::DotSigmoid,    avx2::SigmoidInPlace,
    avx2::SoftmaxRows,   avx2::DotF32,        avx2::AxpyF32,
    avx2::DotSigmoidF32,
};
#endif  // OMNIFAIR_HAVE_AVX2_IMPL

// ---------------------------------------------------------------------------
// NEON backend (aarch64; NEON is baseline there so no runtime CPU check).
// 128-bit lanes, 2 doubles per vector, four accumulators deep. The
// transcendental kernels (sigmoid/softmax) reuse the scalar implementations:
// a polynomial float64x2 exp buys little over libm on 2-wide lanes.
// ---------------------------------------------------------------------------
#if OMNIFAIR_HAVE_NEON_IMPL
namespace neon {

double Dot(const double* a, const double* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc2 = vfmaq_f64(acc2, vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    acc3 = vfmaq_f64(acc3, vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
  }
  for (; i + 2 <= n; i += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
  }
  double acc =
      vaddvq_f64(vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3)));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(double s, const double* b, double* a, size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(a + i, vfmaq_f64(vld1q_f64(a + i), vs, vld1q_f64(b + i)));
  }
  for (; i < n; ++i) a[i] += s * b[i];
}

void Scale(double s, double* v, size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(v + i, vmulq_f64(vs, vld1q_f64(v + i)));
  }
  for (; i < n; ++i) v[i] *= s;
}

double Sum(const double* v, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vaddq_f64(acc0, vld1q_f64(v + i));
    acc1 = vaddq_f64(acc1, vld1q_f64(v + i + 2));
  }
  for (; i + 2 <= n; i += 2) acc0 = vaddq_f64(acc0, vld1q_f64(v + i));
  double acc = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) acc += v[i];
  return acc;
}

double DotSigmoid(const double* a, const double* b, size_t n, double bias) {
  return ScalarSigmoid(bias + Dot(a, b, n));
}

double DotF32(const float* a, const double* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t f = vld1q_f32(a + i);
    acc0 = vfmaq_f64(acc0, vcvt_f64_f32(vget_low_f32(f)), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vcvt_f64_f32(vget_high_f32(f)), vld1q_f64(b + i + 2));
  }
  double acc = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

void AxpyF32(double s, const float* b, double* a, size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t wb = vcvt_f64_f32(vld1_f32(b + i));
    vst1q_f64(a + i, vfmaq_f64(vld1q_f64(a + i), vs, wb));
  }
  for (; i < n; ++i) a[i] += s * static_cast<double>(b[i]);
}

double DotSigmoidF32(const float* a, const double* b, size_t n, double bias) {
  return ScalarSigmoid(bias + DotF32(a, b, n));
}

}  // namespace neon

const Kernels kNeonTable = {
    neon::Dot,           neon::Axpy,            neon::Scale,
    neon::Sum,           neon::DotSigmoid,      scalar::SigmoidInPlace,
    scalar::SoftmaxRows, neon::DotF32,          neon::AxpyF32,
    neon::DotSigmoidF32,
};
#endif  // OMNIFAIR_HAVE_NEON_IMPL

std::atomic<const Kernels*> g_active{nullptr};
std::atomic<int> g_active_backend{static_cast<int>(Backend::kScalar)};
std::once_flag g_resolve_once;

void PublishBackend(Backend backend) {
  g_active.store(&KernelsFor(backend), std::memory_order_release);
  g_active_backend.store(static_cast<int>(backend), std::memory_order_release);
  OF_GAUGE_SET("simd.path", static_cast<double>(backend));
}

Backend BestAvailable() {
  if (BackendAvailable(Backend::kAvx2)) return Backend::kAvx2;
  if (BackendAvailable(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

Backend ResolveFromEnv() {
  const char* env = std::getenv("OMNIFAIR_SIMD");
  std::string value = env != nullptr ? env : "";
  for (char& c : value) c = static_cast<char>(std::tolower(c));
  if (value == "off" || value == "0" || value == "scalar" || value == "none") {
    return Backend::kScalar;
  }
  if (value == "avx2" || value == "neon") {
    const Backend forced = value == "avx2" ? Backend::kAvx2 : Backend::kNeon;
    if (BackendAvailable(forced)) return forced;
    OF_LOG(Warning) << "OMNIFAIR_SIMD=" << value
                    << " requested but unavailable; falling back to "
                    << BackendName(BestAvailable());
    return BestAvailable();
  }
  if (!value.empty() && value != "on" && value != "auto" && value != "1") {
    OF_LOG(Warning) << "unknown OMNIFAIR_SIMD value '" << value
                    << "'; using auto";
  }
  return BestAvailable();
}

void ResolveOnce() {
  std::call_once(g_resolve_once, [] { PublishBackend(ResolveFromEnv()); });
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool BackendAvailable(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if OMNIFAIR_HAVE_AVX2_IMPL
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Backend::kNeon:
#if OMNIFAIR_HAVE_NEON_IMPL
      return true;
#else
      return false;
#endif
  }
  return false;
}

const Kernels& KernelsFor(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return kScalarTable;
    case Backend::kAvx2:
#if OMNIFAIR_HAVE_AVX2_IMPL
      OF_CHECK(BackendAvailable(backend)) << "avx2 backend unavailable";
      return kAvx2Table;
#else
      break;
#endif
    case Backend::kNeon:
#if OMNIFAIR_HAVE_NEON_IMPL
      return kNeonTable;
#else
      break;
#endif
  }
  OF_CHECK(false) << "simd backend " << BackendName(backend)
                  << " not compiled in";
  return kScalarTable;
}

const Kernels& ScalarKernels() { return kScalarTable; }

Backend ActiveBackend() {
  ResolveOnce();
  return static_cast<Backend>(g_active_backend.load(std::memory_order_acquire));
}

const Kernels& Active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    ResolveOnce();
    table = g_active.load(std::memory_order_acquire);
  }
  return *table;
}

void SetActiveBackend(Backend backend) {
  OF_CHECK(BackendAvailable(backend))
      << "simd backend " << BackendName(backend) << " unavailable";
  ResolveOnce();  // keep first-use resolution from clobbering the override
  PublishBackend(backend);
}

}  // namespace simd
}  // namespace omnifair
