// Reproduces Figure 9: enforcing SP across all three COMPAS race groups
// (Black/White/Hispanic) simultaneously. x-axis is SP_max = the largest
// pairwise SP difference among the three groups; y-axis is accuracy.
// Expected shape: OmniFair's hill climbing drives SP_max down to ~0.03
// with high accuracy, while Celis and Agarwal (adapted to multiple groups)
// fail to reduce SP_max anywhere near that far.

#include <cmath>

#include "bench/bench_common.h"

namespace omnifair {
namespace bench {
namespace {

const char* kGroups[] = {"African-American", "Caucasian", "Hispanic"};

FairnessSpec ThreeGroupSpec(double epsilon) {
  return MakeSpec(GroupByAttributeValues(
                      "race", {kGroups[0], kGroups[1], kGroups[2]}),
                  "sp", epsilon);
}

void Run(BenchReporter& reporter) {
  const int seeds = EnvSeeds(2);
  reporter.Config("seeds", seeds);
  reporter.Config("dataset", "compas");
  reporter.Config("metric", "sp");
  reporter.Config("groups", "African-American/Caucasian/Hispanic");
  PrintHeader("Figure 9: three-group SP on COMPAS (SP_max vs accuracy, LR)");
  std::printf("%-10s %-10s %10s %10s %10s\n", "method", "eps", "SP_max",
              "accuracy", "feasible");

  const std::vector<double> epsilons = {0.20, 0.10, 0.05, 0.03};
  for (const std::string& method : {"omnifair", "celis", "agarwal"}) {
    for (double epsilon : epsilons) {
      Aggregate agg;
      int feasible = 0;
      for (int s = 0; s < seeds; ++s) {
        const Dataset data = MakeBenchDataset("compas", 2300 + s);
        const TrainValTestSplit split = SplitDefault(data, 2400 + s);
        const FairnessSpec spec = ThreeGroupSpec(epsilon);
        // Celis/Agarwal "adapted to multiple groups" as in the paper's
        // Figure 9: they get the same 3-group spec; Celis' scalar-grid
        // machinery generalizes through the shared grid tuner, Agarwal
        // through the multi-constraint game.
        const MethodResult result = RunMethod(method, split, "lr", spec, s);
        if (!result.supported) continue;
        agg.Add(result);
        feasible += result.satisfied ? 1 : 0;
      }
      if (agg.runs == 0) {
        std::printf("%-10s %-10.2f %10s %10s %10s\n", method.c_str(), epsilon,
                    "NA", "NA", "NA");
      } else {
        std::printf("%-10s %-10.2f %10.3f %9.1f%% %7d/%d\n", method.c_str(),
                    epsilon, agg.MeanDisparity(), 100.0 * agg.MeanAccuracy(),
                    feasible, seeds);
      }
      reporter.AddAggregate("multi_group", agg)
          .Label("method", method)
          .Value("epsilon", epsilon)
          .Value("feasible", feasible);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::InitTelemetryFromEnv();
  omnifair::bench::BenchReporter reporter(
      "fig9_multi_group",
      "Figure 9: three-group SP on COMPAS (SP_max vs accuracy, LR)");
  omnifair::bench::Run(reporter);
  return omnifair::bench::FinishBench(reporter);
}
