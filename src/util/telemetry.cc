#include "util/telemetry.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/json_writer.h"
#include "util/logging.h"

namespace omnifair {

// From util/metrics_export.h; forward-declared to keep this translation unit
// free of the exporter header (the exporter includes telemetry.h).
class MetricsExporter;
MetricsExporter* StartGlobalMetricsExporterFromEnv();

namespace {

std::atomic<int> g_global_level{static_cast<int>(TelemetryLevel::kCounters)};

/// Thread-local override stack depth is tiny (Train calls don't nest deeply);
/// a single int with "previous value" restoration in the RAII object is all
/// we need. -1 means "no override active".
thread_local int tls_level_override = -1;

/// Atomically max-updates `target` towards `value` with `cmp`.
template <typename Compare>
void AtomicExtreme(std::atomic<double>& target, double value, Compare cmp) {
  double current = target.load(std::memory_order_relaxed);
  while (cmp(value, current) &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void SetTelemetryLevel(TelemetryLevel level) {
  g_global_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

TelemetryLevel GetTelemetryLevel() {
  return static_cast<TelemetryLevel>(g_global_level.load(std::memory_order_relaxed));
}

TelemetryLevel EffectiveTelemetryLevel() {
  const int override_level = tls_level_override;
  if (override_level >= 0) return static_cast<TelemetryLevel>(override_level);
  return GetTelemetryLevel();
}

namespace {

void InitTelemetryLevelFromEnv() {
  const char* value = std::getenv("OMNIFAIR_TELEMETRY");
  if (value == nullptr) return;
  std::string lowered(value);
  for (char& c : lowered) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lowered == "off" || lowered == "none" || lowered == "0") {
    SetTelemetryLevel(TelemetryLevel::kOff);
  } else if (lowered == "counters" || lowered == "1") {
    SetTelemetryLevel(TelemetryLevel::kCounters);
  } else if (lowered == "trace" || lowered == "full" || lowered == "2") {
    SetTelemetryLevel(TelemetryLevel::kFullTrace);
  } else {
    OF_LOG(Warning) << "OMNIFAIR_TELEMETRY=\"" << value
                    << "\" not recognized (want off|counters|trace); keeping "
                    << static_cast<int>(GetTelemetryLevel());
  }
}

}  // namespace

void InitTelemetryFromEnv() {
  InitTelemetryLevelFromEnv();
  // Defined in util/metrics_export.cc (same library): starts the JSONL
  // exporter thread when OMNIFAIR_METRICS_OUT is set. No-op otherwise.
  StartGlobalMetricsExporterFromEnv();
}

ScopedTelemetryLevel::ScopedTelemetryLevel(TelemetryLevel level)
    : previous_(tls_level_override) {
  tls_level_override = static_cast<int>(level);
}

ScopedTelemetryLevel::~ScopedTelemetryLevel() { tls_level_override = previous_; }

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  OF_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending: " << name_;
}

void Histogram::Record(double value) {
  size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicExtreme(min_, value, [](double a, double b) { return a < b; });
  AtomicExtreme(max_, value, [](double a, double b) { return a > b; });
}

double Histogram::Mean() const {
  const long long count = Count();
  return count > 0 ? Sum() / static_cast<double>(count) : 0.0;
}

std::vector<long long> Histogram::BucketCounts() const {
  std::vector<long long> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> bounds = {10.0,    20.0,    50.0,   100.0,
                                             200.0,   500.0,   1e3,    2e3,
                                             5e3,     1e4,     2e4,    5e4,
                                             1e5,     1e6};
  return bounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& counter : counters_) {
    if (counter->name() == name) return counter.get();
  }
  counters_.emplace_back(new Counter(name));
  return counters_.back().get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& gauge : gauges_) {
    if (gauge->name() == name) return gauge.get();
  }
  gauges_.emplace_back(new Gauge(name));
  return gauges_.back().get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& histogram : histograms_) {
    if (histogram->name() == name) {
      if (histogram->bounds() != bounds) {
        OF_LOG(Warning) << "GetHistogram(\"" << name << "\"): requested "
                        << bounds.size() << " bounds conflict with the "
                        << histogram->bounds().size()
                        << " the histogram was created with; keeping the "
                           "original bounds";
      }
      return histogram.get();
    }
  }
  histograms_.emplace_back(new Histogram(name, bounds));
  return histograms_.back().get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& counter : counters_) {
    snapshot.counters.emplace_back(counter->name(), counter->Value());
  }
  for (const auto& gauge : gauges_) {
    snapshot.gauges.emplace_back(gauge->name(), gauge->Value());
  }
  for (const auto& histogram : histograms_) {
    MetricsSnapshot::HistogramSnapshot h;
    h.name = histogram->name();
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    h.bounds = histogram->bounds();
    h.buckets = histogram->BucketCounts();
    snapshot.histograms.push_back(std::move(h));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& counter : counters_) counter->Reset();
  for (const auto& gauge : gauges_) gauge->Reset();
  for (const auto& histogram : histograms_) histogram->Reset();
}

void MetricsSnapshot::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : counters) writer.KV(name, value);
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, value] : gauges) writer.KV(name, value);
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const HistogramSnapshot& h : histograms) {
    writer.Key(h.name);
    writer.BeginObject();
    writer.KV("count", h.count);
    writer.KV("sum", h.sum);
    // min/max are +/-inf on an empty histogram; emit 0/0 there so consumers
    // never see null (or worse, a stray infinity) for a metric that simply
    // was not recorded.
    writer.KV("min", h.count > 0 ? h.min : 0.0);
    writer.KV("max", h.count > 0 ? h.max : 0.0);
    writer.Key("bounds");
    writer.BeginArray();
    for (double bound : h.bounds) writer.Double(bound);
    writer.EndArray();
    writer.Key("buckets");
    writer.BeginArray();
    for (long long bucket : h.buckets) writer.Int(bucket);
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  JsonWriter writer(os);
  WriteJson(writer);
  return os.str();
}

}  // namespace omnifair
