#include "ml/logistic_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/testing_data.h"
#include "util/fault_injector.h"
#include "util/random.h"

namespace omnifair {
namespace {

using testing_data::Blobs;
using testing_data::MakeBlobs;
using testing_data::TrainAccuracy;

TEST(LogisticRegressionTest, LearnsSeparableData) {
  const Blobs blobs = MakeBlobs(500, 2.0, 1);
  LogisticRegressionTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.97);
}

TEST(LogisticRegressionTest, ProbabilitiesInRange) {
  const Blobs blobs = MakeBlobs(200, 1.0, 2);
  LogisticRegressionTrainer trainer;
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  for (double p : model->PredictProba(blobs.X)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, Deterministic) {
  const Blobs blobs = MakeBlobs(300, 1.5, 3);
  LogisticRegressionTrainer a;
  LogisticRegressionTrainer b;
  const auto ma = a.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto mb = b.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_EQ(ma->Predict(blobs.X), mb->Predict(blobs.X));
}

TEST(LogisticRegressionTest, ZeroWeightExamplesIgnored) {
  // Mislabel half the data but give those examples zero weight; the model
  // must behave as if they were absent.
  Blobs blobs = MakeBlobs(400, 2.5, 4);
  std::vector<double> weights(blobs.y.size(), 1.0);
  Blobs corrupted = blobs;
  for (size_t i = 0; i < blobs.y.size(); i += 2) {
    corrupted.y[i] = 1 - corrupted.y[i];
    weights[i] = 0.0;
  }
  LogisticRegressionTrainer trainer;
  const auto model = trainer.Fit(corrupted.X, corrupted.y, weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.95);
}

TEST(LogisticRegressionTest, UpweightingShiftsDecisions) {
  // Upweighting positive examples should increase the positive rate.
  const Blobs blobs = MakeBlobs(500, 0.7, 5);
  LogisticRegressionTrainer trainer;
  const auto base = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  std::vector<double> boosted(blobs.y.size());
  for (size_t i = 0; i < blobs.y.size(); ++i) {
    boosted[i] = blobs.y[i] == 1 ? 5.0 : 1.0;
  }
  const auto heavy = trainer.Fit(blobs.X, blobs.y, boosted);
  const auto rate = [&](const Classifier& m) {
    const std::vector<int> preds = m.Predict(blobs.X);
    double positives = 0.0;
    for (int p : preds) positives += p;
    return positives / static_cast<double>(preds.size());
  };
  EXPECT_GT(rate(*heavy), rate(*base));
}

TEST(LogisticRegressionTest, WarmStartReducesIterations) {
  const Blobs blobs = MakeBlobs(800, 1.0, 6);
  LogisticRegressionTrainer cold;
  (void)cold.Fit(blobs.X, blobs.y, blobs.unit_weights);
  (void)cold.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const long long cold_iterations = cold.total_iterations();

  LogisticRegressionTrainer warm;
  warm.SetWarmStart(true);
  (void)warm.Fit(blobs.X, blobs.y, blobs.unit_weights);
  (void)warm.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_LT(warm.total_iterations(), cold_iterations);
}

TEST(LogisticRegressionTest, ResetWarmStartForgets) {
  const Blobs blobs = MakeBlobs(200, 1.0, 7);
  LogisticRegressionTrainer trainer;
  trainer.SetWarmStart(true);
  const auto first = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  trainer.ResetWarmStart();
  const auto second = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  // After reset the fit starts from zero again -> same result as first.
  EXPECT_EQ(first->Predict(blobs.X), second->Predict(blobs.X));
}

TEST(LogisticRegressionTest, SupportsWarmStartFlag) {
  LogisticRegressionTrainer trainer;
  EXPECT_TRUE(trainer.SupportsWarmStart());
  EXPECT_EQ(trainer.Name(), "logistic_regression");
}

TEST(LogisticRegressionTest, WeightingEquivalentToReplication) {
  // The paper's §1 argument for model-agnosticism: integer example weights
  // can be simulated by replicating examples. With L2 = 0 the weighted and
  // replicated objectives have identical optima.
  const Blobs blobs = MakeBlobs(150, 1.0, 8);
  std::vector<double> weights(blobs.y.size());
  Matrix replicated_X;
  std::vector<int> replicated_y;
  Rng rng(17);
  for (size_t i = 0; i < blobs.y.size(); ++i) {
    const int copies = 1 + static_cast<int>(rng.NextBounded(3));  // 1..3
    weights[i] = copies;
    for (int c = 0; c < copies; ++c) {
      replicated_X.AppendRow(blobs.X.RowVector(i));
      replicated_y.push_back(blobs.y[i]);
    }
  }
  LogisticRegressionOptions options;
  options.l2 = 0.0;
  options.max_iterations = 600;
  LogisticRegressionTrainer weighted_trainer(options);
  LogisticRegressionTrainer replicated_trainer(options);
  const auto weighted = weighted_trainer.Fit(blobs.X, blobs.y, weights);
  const auto replicated = replicated_trainer.Fit(
      replicated_X, replicated_y, std::vector<double>(replicated_y.size(), 1.0));
  // Same decisions on the original data.
  EXPECT_EQ(weighted->Predict(blobs.X), replicated->Predict(blobs.X));
}

TEST(LogisticRegressionSgdTest, BatchSizeZeroIsBitIdenticalToFullBatch) {
  // batch_size = 0 must keep the exact full-batch path: not just the same
  // predictions, the same bits.
  const Blobs blobs = MakeBlobs(300, 1.5, 9);
  LogisticRegressionOptions zero_batch;
  zero_batch.batch_size = 0;
  LogisticRegressionTrainer a;                  // seed defaults
  LogisticRegressionTrainer b(zero_batch);
  const auto ma = a.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto mb = b.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto& ca = static_cast<const LogisticRegressionModel&>(*ma);
  const auto& cb = static_cast<const LogisticRegressionModel&>(*mb);
  ASSERT_EQ(ca.coefficients().size(), cb.coefficients().size());
  for (size_t i = 0; i < ca.coefficients().size(); ++i) {
    EXPECT_EQ(ca.coefficients()[i], cb.coefficients()[i]);
  }
  EXPECT_EQ(ca.intercept(), cb.intercept());
}

TEST(LogisticRegressionSgdTest, MiniBatchLearnsSeparableData) {
  const Blobs blobs = MakeBlobs(500, 2.0, 10);
  LogisticRegressionOptions options;
  options.batch_size = 32;
  options.epochs = 20;
  options.lr_schedule = LrSchedule::kInvSqrt;
  LogisticRegressionTrainer trainer(options);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.95);
}

TEST(LogisticRegressionSgdTest, MiniBatchDeterministic) {
  const Blobs blobs = MakeBlobs(300, 1.0, 11);
  LogisticRegressionOptions options;
  options.batch_size = 64;
  options.epochs = 5;
  LogisticRegressionTrainer a(options);
  LogisticRegressionTrainer b(options);
  const auto ma = a.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto mb = b.Fit(blobs.X, blobs.y, blobs.unit_weights);
  const auto& ca = static_cast<const LogisticRegressionModel&>(*ma);
  const auto& cb = static_cast<const LogisticRegressionModel&>(*mb);
  ASSERT_EQ(ca.coefficients().size(), cb.coefficients().size());
  for (size_t i = 0; i < ca.coefficients().size(); ++i) {
    EXPECT_EQ(ca.coefficients()[i], cb.coefficients()[i]);
  }
  EXPECT_EQ(ca.intercept(), cb.intercept());
}

TEST(LogisticRegressionSgdTest, MiniBatchZeroWeightExamplesIgnored) {
  Blobs blobs = MakeBlobs(400, 2.5, 12);
  std::vector<double> weights(blobs.y.size(), 1.0);
  Blobs corrupted = blobs;
  for (size_t i = 0; i < blobs.y.size(); i += 2) {
    corrupted.y[i] = 1 - corrupted.y[i];
    weights[i] = 0.0;
  }
  LogisticRegressionOptions options;
  options.batch_size = 50;
  options.epochs = 20;
  LogisticRegressionTrainer trainer(options);
  const auto model = trainer.Fit(corrupted.X, corrupted.y, weights);
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.93);
}

TEST(LogisticRegressionSgdTest, MiniBatchBacksOffOnInjectedDivergence) {
  FaultInjector::Reset();
  const Blobs blobs = MakeBlobs(300, 2.0, 13);
  LogisticRegressionOptions options;
  options.batch_size = 32;
  options.epochs = 12;
  LogisticRegressionTrainer trainer(options);
  // One injected divergence: the epoch rolls back, halves the step, and the
  // fit still converges to a good model.
  FaultInjector::Arm(fault_sites::kLrDescend);
  const auto model = trainer.Fit(blobs.X, blobs.y, blobs.unit_weights);
  FaultInjector::Reset();
  EXPECT_GE(TrainAccuracy(*model, blobs), 0.93);

  // Persistent divergence: retries run out; the returned checkpoint model
  // must still be finite.
  FaultInjector::Arm(fault_sites::kLrDescend, 1, /*repeat=*/true);
  LogisticRegressionTrainer doomed(options);
  const auto checkpoint = doomed.Fit(blobs.X, blobs.y, blobs.unit_weights);
  FaultInjector::Reset();
  const auto& cm = static_cast<const LogisticRegressionModel&>(*checkpoint);
  for (double c : cm.coefficients()) EXPECT_TRUE(std::isfinite(c));
  EXPECT_TRUE(std::isfinite(cm.intercept()));
}

TEST(LogisticRegressionModelTest, CoefficientsExposed) {
  LogisticRegressionModel model({1.0, -1.0}, 0.5);
  EXPECT_EQ(model.coefficients().size(), 2u);
  EXPECT_DOUBLE_EQ(model.intercept(), 0.5);
  Matrix X = {{0.0, 0.0}};
  // sigmoid(0.5) > 0.5 -> predicts 1.
  EXPECT_EQ(model.Predict(X)[0], 1);
}

}  // namespace
}  // namespace omnifair
