#include "ml/trainer_registry.h"

#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "util/logging.h"

namespace omnifair {

std::unique_ptr<Trainer> MakeTrainer(const std::string& name, uint64_t seed) {
  return MakeTrainer(name, seed, TrainerOverrides{});
}

std::unique_ptr<Trainer> MakeTrainer(const std::string& name, uint64_t seed,
                                     const TrainerOverrides& overrides) {
  if (name == "lr") {
    LogisticRegressionOptions options;
    options.batch_size = overrides.batch_size;
    if (overrides.epochs > 0) options.epochs = overrides.epochs;
    options.lr_schedule = overrides.lr_schedule;
    return std::make_unique<LogisticRegressionTrainer>(options);
  }
  if (name == "dt" || name == "dt_hist") {
    DecisionTreeOptions options;
    options.seed = seed;
    if (name == "dt_hist") options.split_method = SplitMethod::kHistogram;
    return std::make_unique<DecisionTreeTrainer>(options);
  }
  if (name == "rf" || name == "rf_hist") {
    RandomForestOptions options;
    options.seed = seed;
    if (name == "rf_hist") options.split_method = SplitMethod::kHistogram;
    return std::make_unique<RandomForestTrainer>(options);
  }
  if (name == "xgb" || name == "xgb_hist") {
    GbdtOptions options;
    if (name == "xgb_hist") options.split_method = SplitMethod::kHistogram;
    return std::make_unique<GbdtTrainer>(options);
  }
  if (name == "nb") {
    return std::make_unique<NaiveBayesTrainer>();
  }
  if (name == "nn") {
    MlpOptions options;
    options.seed = seed;
    options.batch_size = overrides.batch_size;
    if (overrides.epochs > 0) options.epochs = overrides.epochs;
    options.lr_schedule = overrides.lr_schedule;
    return std::make_unique<MlpTrainer>(options);
  }
  OF_CHECK(false) << "unknown trainer name: " << name;
  return nullptr;
}

std::vector<std::string> PaperModelNames() { return {"lr", "rf", "xgb", "nn"}; }

}  // namespace omnifair
