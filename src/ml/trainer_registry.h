#ifndef OMNIFAIR_ML_TRAINER_REGISTRY_H_
#define OMNIFAIR_ML_TRAINER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace omnifair {

/// Creates a trainer by short name, with per-experiment seed:
///   "lr"  -> LogisticRegressionTrainer
///   "dt"  -> DecisionTreeTrainer
///   "rf"  -> RandomForestTrainer
///   "xgb" -> GbdtTrainer
///   "nn"  -> MlpTrainer
///   "nb"  -> NaiveBayesTrainer
/// Tree families also accept a "_hist" suffix ("dt_hist", "rf_hist",
/// "xgb_hist") selecting SplitMethod::kHistogram (DESIGN.md §11) with the
/// default bin count; everything else about the family is unchanged.
/// Aborts on unknown names (programmer error).
std::unique_ptr<Trainer> MakeTrainer(const std::string& name, uint64_t seed = 42);

/// Optional hyperparameter overrides applied on top of a family's defaults.
/// Zero values mean "keep the default". batch_size/epochs/lr_schedule only
/// affect the SGD families (lr, nn); other families ignore them.
struct TrainerOverrides {
  size_t batch_size = 0;  ///< > 0 switches lr/nn to mini-batch SGD
  int epochs = 0;         ///< mini-batch epochs (0 = family default)
  LrSchedule lr_schedule = LrSchedule::kConstant;
};

std::unique_ptr<Trainer> MakeTrainer(const std::string& name, uint64_t seed,
                                     const TrainerOverrides& overrides);

/// The four model families of the paper's Table 5 header: lr, rf, xgb, nn.
std::vector<std::string> PaperModelNames();

}  // namespace omnifair

#endif  // OMNIFAIR_ML_TRAINER_REGISTRY_H_
