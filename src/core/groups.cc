#include "core/groups.h"

#include "util/logging.h"

namespace omnifair {

GroupingFunction GroupByAttribute(const std::string& column_name) {
  return [column_name](const Dataset& dataset) {
    const Column& col = dataset.ColumnByName(column_name);
    OF_CHECK(col.type() == ColumnType::kCategorical)
        << "GroupByAttribute requires a categorical column: " << column_name;
    GroupMap groups;
    for (size_t i = 0; i < col.size(); ++i) {
      groups[col.CategoryOf(i)].push_back(i);
    }
    return groups;
  };
}

GroupingFunction GroupByAttributeValues(const std::string& column_name,
                                        const std::vector<std::string>& values) {
  return [column_name, values](const Dataset& dataset) {
    const Column& col = dataset.ColumnByName(column_name);
    OF_CHECK(col.type() == ColumnType::kCategorical)
        << "GroupByAttributeValues requires a categorical column: " << column_name;
    GroupMap groups;
    for (const std::string& value : values) groups[value];  // keep declared order
    for (size_t i = 0; i < col.size(); ++i) {
      const std::string& category = col.CategoryOf(i);
      auto it = groups.find(category);
      if (it != groups.end()) it->second.push_back(i);
    }
    return groups;
  };
}

GroupingFunction GroupByIntersection(const std::vector<std::string>& column_names) {
  return [column_names](const Dataset& dataset) {
    GroupMap groups;
    for (size_t i = 0; i < dataset.NumRows(); ++i) {
      std::string key;
      for (size_t c = 0; c < column_names.size(); ++c) {
        const Column& col = dataset.ColumnByName(column_names[c]);
        OF_CHECK(col.type() == ColumnType::kCategorical)
            << "GroupByIntersection requires categorical columns";
        if (c > 0) key += "|";
        key += col.CategoryOf(i);
      }
      groups[key].push_back(i);
    }
    return groups;
  };
}

GroupingFunction GroupByPredicates(
    std::vector<std::pair<std::string, std::function<bool(const Dataset&, size_t)>>>
        predicates) {
  return [predicates](const Dataset& dataset) {
    GroupMap groups;
    for (const auto& [name, predicate] : predicates) {
      std::vector<size_t>& members = groups[name];
      for (size_t i = 0; i < dataset.NumRows(); ++i) {
        if (predicate(dataset, i)) members.push_back(i);
      }
    }
    return groups;
  };
}

Result<GroupMap> EvaluateGrouping(const GroupingFunction& grouping,
                                  const Dataset& dataset) {
  if (!grouping) return Status::InvalidArgument("grouping function is empty");
  try {
    return grouping(dataset);
  } catch (const std::exception& e) {
    CountRecoveryEvent(RecoveryEvent::kGroupingException);
    OF_LOG(Warning) << "grouping callable threw: " << e.what();
    return Status::Internal(std::string("grouping callable threw: ") + e.what());
  } catch (...) {
    CountRecoveryEvent(RecoveryEvent::kGroupingException);
    OF_LOG(Warning) << "grouping callable threw a non-std exception";
    return Status::Internal("grouping callable threw a non-std exception");
  }
}

bool IsValidGrouping(const GroupMap& groups) {
  size_t non_empty = 0;
  for (const auto& [name, members] : groups) {
    if (!members.empty()) ++non_empty;
  }
  return non_empty >= 2;
}

}  // namespace omnifair
