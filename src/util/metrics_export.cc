#include "util/metrics_export.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "util/json_writer.h"
#include "util/logging.h"

namespace omnifair {

// ---------------------------------------------------------------------------
// HistogramSnapshot::Quantile (declared in util/telemetry.h)
// ---------------------------------------------------------------------------

double MetricsSnapshot::HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the target observation (0-based, fractional) and a scan for the
  // bucket that contains it.
  const double rank = q * static_cast<double>(count);
  double seen = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket <= 0.0) continue;
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    // Linear interpolation within this bucket. Bucket i covers
    // (bounds[i-1], bounds[i]]; the first bucket starts at min and the
    // overflow bucket (i == bounds.size()) ends at max.
    const double lo = i == 0 ? min : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : max;
    const double fraction = in_bucket > 0.0 ? (rank - seen) / in_bucket : 0.0;
    const double value = lo + (std::max(hi, lo) - lo) * fraction;
    // All mass in one bucket can make lo/hi cross the true data range
    // (e.g. min sits above the bucket's lower bound); clamp so estimates
    // never leave [min, max].
    return std::min(std::max(value, min), max);
  }
  return max;  // unreachable when bucket counts sum to count
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

std::string PrometheusMetricName(const std::string& name,
                                 const std::string& prefix) {
  std::string out = prefix;
  out.reserve(prefix.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

namespace {

/// Prometheus floats: plain shortest-round-trip decimal, with +Inf spelled
/// the Prometheus way.
std::string PromDouble(double value) {
  if (value == std::numeric_limits<double>::infinity()) return "+Inf";
  if (value == -std::numeric_limits<double>::infinity()) return "-Inf";
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusMetricName(name);
    os << "# TYPE " << prom << " counter\n";
    os << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusMetricName(name);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << " " << PromDouble(value) << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string prom = PrometheusMetricName(h.name);
    os << "# TYPE " << prom << " histogram\n";
    long long cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? PromDouble(h.bounds[i]) : "+Inf";
      os << prom << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    os << prom << "_sum " << PromDouble(h.sum) << "\n";
    os << prom << "_count " << h.count << "\n";
    // Estimated quantiles ride along as labelled gauges (a histogram type
    // cannot carry them); dashboards read them without PromQL gymnastics.
    for (double q : {0.5, 0.9, 0.99}) {
      os << prom << "_quantile{quantile=\"" << PromDouble(q) << "\"} "
         << PromDouble(h.Quantile(q)) << "\n";
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// MetricsExporter
// ---------------------------------------------------------------------------

namespace {

/// Writes the delta between two snapshots: counter increments and histogram
/// count/sum increments, omitting metrics that did not move. Both snapshots
/// are name-sorted (MetricsRegistry::Snapshot sorts), so a merge walk works.
void WriteDelta(const MetricsSnapshot& prev, const MetricsSnapshot& now,
                JsonWriter& w) {
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  {
    size_t pi = 0;
    for (const auto& [name, value] : now.counters) {
      while (pi < prev.counters.size() && prev.counters[pi].first < name) ++pi;
      long long before = 0;
      if (pi < prev.counters.size() && prev.counters[pi].first == name) {
        before = prev.counters[pi].second;
      }
      if (value != before) w.KV(name, value - before);
    }
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  {
    size_t pi = 0;
    for (const auto& h : now.histograms) {
      while (pi < prev.histograms.size() && prev.histograms[pi].name < h.name) {
        ++pi;
      }
      long long count_before = 0;
      double sum_before = 0.0;
      if (pi < prev.histograms.size() && prev.histograms[pi].name == h.name) {
        count_before = prev.histograms[pi].count;
        sum_before = prev.histograms[pi].sum;
      }
      if (h.count == count_before) continue;
      w.Key(h.name);
      w.BeginObject();
      w.KV("count", h.count - count_before);
      w.KV("sum", h.sum - sum_before);
      w.EndObject();
    }
  }
  w.EndObject();
  w.EndObject();
}

}  // namespace

MetricsExporter::MetricsExporter(MetricsExporterOptions options)
    : options_(std::move(options)) {
  options_.interval_ms = std::max(options_.interval_ms, 10);
}

MetricsExporter::~MetricsExporter() { Stop(); }

Status MetricsExporter::Start() {
  if (options_.path.empty()) {
    return Status::InvalidArgument("MetricsExporter: empty output path");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) {
    return Status::InvalidArgument("MetricsExporter: already started");
  }
  file_ = std::fopen(options_.path.c_str(), "ab");
  if (file_ == nullptr) {
    return IoError(options_.path, "open");
  }
  running_ = true;
  stop_requested_ = false;
  start_time_ = std::chrono::steady_clock::now();
  previous_ = MetricsSnapshot();
  thread_ = std::thread(&MetricsExporter::Loop, this);
  return Status::Ok();
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool MetricsExporter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

long long MetricsExporter::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_written_;
}

void MetricsExporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.interval_ms);
    cv_.wait_until(lock, deadline, [this] { return stop_requested_; });
    if (stop_requested_) break;
    WriteSnapshotLine(/*final_line=*/false);
  }
  // Final snapshot on clean shutdown: whatever accumulated since the last
  // tick still reaches the file, and the line is flagged so consumers can
  // treat it as the run's totals.
  WriteSnapshotLine(/*final_line=*/true);
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

void MetricsExporter::WriteSnapshotLine(bool final_line) {
  // Called from Loop() with mu_ held (file_ and previous_ are stable).
  const MetricsSnapshot now = MetricsRegistry::Global().Snapshot();
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time_)
          .count();
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.KV("schema", "omnifair.metrics");
  w.KV("schema_version", 1);
  w.KV("seq", ++seq_);
  w.KV("uptime_ms", uptime_ms);
  w.KV("interval_ms", options_.interval_ms);
  w.KV("final", final_line);
  w.Key("cumulative");
  now.WriteJson(w);
  w.Key("delta");
  WriteDelta(previous_, now, w);
  w.Key("quantiles");
  w.BeginObject();
  for (const auto& h : now.histograms) {
    if (h.count <= 0) continue;
    w.Key(h.name);
    w.BeginObject();
    w.KV("p50", h.Quantile(0.5));
    w.KV("p90", h.Quantile(0.9));
    w.KV("p99", h.Quantile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  os << "\n";
  const std::string line = os.str();
  // One fwrite per line keeps whole lines atomic w.r.t. other appenders in
  // practice; fflush after each line so a crash loses at most the current
  // interval.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    OF_LOG(Warning) << "MetricsExporter: short write to " << options_.path;
  }
  std::fflush(file_);
  previous_ = now;
  ++snapshots_written_;
}

// ---------------------------------------------------------------------------
// Process-global exporter
// ---------------------------------------------------------------------------

namespace {

std::mutex g_exporter_mu;
MetricsExporter* g_exporter = nullptr;  // leaked; atexit stops it
bool g_exporter_env_checked = false;

}  // namespace

void StopGlobalMetricsExporter() {
  std::lock_guard<std::mutex> lock(g_exporter_mu);
  if (g_exporter != nullptr) g_exporter->Stop();
}

MetricsExporter* StartGlobalMetricsExporterFromEnv() {
  std::lock_guard<std::mutex> lock(g_exporter_mu);
  if (g_exporter_env_checked) return g_exporter;
  g_exporter_env_checked = true;
  const char* path = std::getenv("OMNIFAIR_METRICS_OUT");
  if (path == nullptr || path[0] == '\0') return nullptr;
  MetricsExporterOptions options;
  options.path = path;
  if (const char* interval = std::getenv("OMNIFAIR_METRICS_INTERVAL_MS")) {
    char* end = nullptr;
    const long parsed = std::strtol(interval, &end, 10);
    if (end != interval && *end == '\0' && parsed > 0) {
      options.interval_ms = static_cast<int>(parsed);
    } else {
      OF_LOG(Warning) << "OMNIFAIR_METRICS_INTERVAL_MS=\"" << interval
                      << "\" is not a positive integer; using "
                      << options.interval_ms << "ms";
    }
  }
  auto* exporter = new MetricsExporter(std::move(options));  // never deleted
  const Status status = exporter->Start();
  if (!status.ok()) {
    OF_LOG(Warning) << "OMNIFAIR_METRICS_OUT: " << status.ToString();
    delete exporter;
    return nullptr;
  }
  g_exporter = exporter;
  std::atexit(StopGlobalMetricsExporter);
  return g_exporter;
}

}  // namespace omnifair
