#ifndef OMNIFAIR_BASELINES_BASELINE_H_
#define OMNIFAIR_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/spec.h"
#include "data/dataset.h"
#include "data/encoder.h"
#include "ml/classifier.h"
#include "util/status.h"

namespace omnifair {

/// Common result type for all re-implemented competitor methods, mirroring
/// FairModel enough for side-by-side benchmarking.
struct BaselineResult {
  std::unique_ptr<Classifier> model;
  FeatureEncoder encoder;
  /// Whether the declared constraint held on the validation split. False
  /// corresponds to the paper's NA(1) entries.
  bool satisfied = false;
  double val_accuracy = 0.0;
  std::vector<double> val_fairness_parts;
  int models_trained = 0;
  double train_seconds = 0.0;
};

/// Interface of a competitor fairness method (Table 1 of the paper). Each
/// implementation documents which constraints/models it supports; requesting
/// an unsupported combination returns kUnsupported — the paper's NA(2).
class FairnessBaseline {
 public:
  virtual ~FairnessBaseline() = default;

  virtual std::string Name() const = 0;

  /// Trains a model under a single fairness specification. Infeasibility
  /// (no knob setting meets epsilon on validation) is reported by a result
  /// with satisfied=false, matching how the OmniFair facade reports it.
  virtual Result<BaselineResult> Train(const Dataset& train, const Dataset& val,
                                       Trainer* trainer,
                                       const FairnessSpec& spec) = 0;

  /// Whether the method supports this fairness metric at all.
  virtual bool SupportsMetric(const FairnessMetric& metric) const = 0;

  /// Whether the method works with this model family (paper's
  /// model-agnostic column). Default: any trainer.
  virtual bool SupportsTrainer(const Trainer& trainer) const;
};

/// Factory by name: the six Table-1 methods "kamiran", "calmon", "zafar",
/// "celis", "agarwal", "thomas", plus the beyond-the-paper post-processing
/// baseline "hardt". Aborts on unknown names.
std::unique_ptr<FairnessBaseline> MakeBaseline(const std::string& name);

/// All six baseline names in Table 5 row order.
std::vector<std::string> AllBaselineNames();

}  // namespace omnifair

#endif  // OMNIFAIR_BASELINES_BASELINE_H_
