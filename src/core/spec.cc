#include "core/spec.h"

namespace omnifair {

FairnessSpec MakeSpec(GroupingFunction grouping, MetricKind kind, double epsilon) {
  FairnessSpec spec;
  spec.grouping = std::move(grouping);
  spec.metric = MakeMetric(kind);
  spec.epsilon = epsilon;
  return spec;
}

FairnessSpec MakeSpec(GroupingFunction grouping, const std::string& metric_name,
                      double epsilon) {
  FairnessSpec spec;
  spec.grouping = std::move(grouping);
  spec.metric = MakeMetricByName(metric_name);
  spec.epsilon = epsilon;
  return spec;
}

std::vector<FairnessSpec> EqualizedOddsSpecs(GroupingFunction grouping,
                                             double epsilon) {
  return {MakeSpec(grouping, MetricKind::kFalsePositiveRate, epsilon),
          MakeSpec(std::move(grouping), MetricKind::kFalseNegativeRate, epsilon)};
}

std::vector<FairnessSpec> PredictiveParitySpecs(GroupingFunction grouping,
                                                double epsilon) {
  return {MakeSpec(grouping, MetricKind::kFalseOmissionRate, epsilon),
          MakeSpec(std::move(grouping), MetricKind::kFalseDiscoveryRate, epsilon)};
}

Result<std::vector<ConstraintSpec>> InduceConstraints(const FairnessSpec& spec,
                                                      const Dataset& reference) {
  if (!spec.grouping) {
    return Status::InvalidArgument("fairness spec has no grouping function");
  }
  if (spec.metric == nullptr) {
    return Status::InvalidArgument("fairness spec has no metric");
  }
  if (spec.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  Result<GroupMap> groups_result = EvaluateGrouping(spec.grouping, reference);
  if (!groups_result.ok()) return groups_result.status();
  const GroupMap& groups = *groups_result;
  std::vector<std::string> names;
  for (const auto& [name, members] : groups) {
    if (!members.empty()) names.push_back(name);
  }
  if (names.size() < 2) {
    return Status::InvalidArgument(
        "grouping function must produce at least two non-empty groups (got " +
        std::to_string(names.size()) + ")");
  }
  std::vector<ConstraintSpec> constraints;
  for (size_t a = 0; a < names.size(); ++a) {
    for (size_t b = a + 1; b < names.size(); ++b) {
      ConstraintSpec constraint;
      constraint.grouping = spec.grouping;
      constraint.metric = spec.metric;
      constraint.group1 = names[a];
      constraint.group2 = names[b];
      constraint.epsilon = spec.epsilon;
      constraints.push_back(std::move(constraint));
    }
  }
  return constraints;
}

Result<std::vector<ConstraintSpec>> InduceConstraints(
    const std::vector<FairnessSpec>& specs, const Dataset& reference) {
  std::vector<ConstraintSpec> all;
  for (const FairnessSpec& spec : specs) {
    Result<std::vector<ConstraintSpec>> induced = InduceConstraints(spec, reference);
    if (!induced.ok()) return induced.status();
    for (ConstraintSpec& constraint : *induced) all.push_back(std::move(constraint));
  }
  if (all.empty()) return Status::InvalidArgument("no constraints induced");
  return all;
}

}  // namespace omnifair
