#ifndef OMNIFAIR_CORE_GRID_SEARCH_H_
#define OMNIFAIR_CORE_GRID_SEARCH_H_

#include <vector>

#include "core/checkpoint.h"
#include "core/hill_climbing.h"
#include "core/problem.h"

namespace omnifair {

/// Options for the grid-search baseline over Lambda (§6.2's "hypothetical
/// baseline solution"). The grid spans [-max_lambda, max_lambda] in each of
/// the k dimensions with `points_per_dim` samples — cost grows as
/// points_per_dim^k, which is exactly why the paper replaces it with
/// hill climbing.
struct GridSearchOptions {
  double max_lambda = 1.0;
  int points_per_dim = 9;
  /// Worker threads for grid-point fits on the shared pool; 1 keeps the
  /// exact serial code path. Each worker drives its own trainer clone, so
  /// parallel runs need a Clone()-able trainer (all built-in families are);
  /// otherwise the tuner silently falls back to serial. Results are
  /// bit-identical to serial for any thread count: ties are broken by grid
  /// index and TuneReport points are merged in index order.
  int num_threads = 1;
  /// Crash-safe checkpoint/resume for this run (DESIGN.md §12).
  CheckpointOptions checkpoint;
};

/// One evaluated grid point, exposed so benches can plot satisfactory
/// regions (paper Figure 2).
struct GridPoint {
  std::vector<double> lambdas;
  double val_accuracy = 0.0;
  std::vector<double> val_fairness_parts;
  bool satisfied = false;
};

/// Exhaustive grid search over Lambda; picks the satisfying point with the
/// highest validation accuracy. For prediction-parameterized metrics the
/// weights use the unconstrained model's predictions (one-shot
/// approximation).
class GridSearchTuner {
 public:
  explicit GridSearchTuner(GridSearchOptions options = {});

  MultiTuneResult Run(FairnessProblem& problem) const;

  /// Like Run but also returns every evaluated point via `points`.
  MultiTuneResult RunCollecting(FairnessProblem& problem,
                                std::vector<GridPoint>* points) const;

 private:
  GridSearchOptions options_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_GRID_SEARCH_H_
