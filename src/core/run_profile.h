#ifndef OMNIFAIR_CORE_RUN_PROFILE_H_
#define OMNIFAIR_CORE_RUN_PROFILE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "util/telemetry.h"

namespace omnifair {

class JsonWriter;

// ---------------------------------------------------------------------------
// Per-Train run profiling (DESIGN.md §13): where did the tuning search spend
// its time? Scoped stage timers are threaded through the FairnessProblem fit
// paths, the evaluator, and the tuners' checkpoint barriers; OmniFair::Train
// aggregates them (plus registry counter deltas for cache hit rates, binning
// reuse, and pool utilization) into FairModel::run_profile.
// ---------------------------------------------------------------------------

/// The instrumented stages of a tuning run. Stage timers never nest across
/// stages on one thread (weight computation finishes before the trainer fit
/// starts, predictions and constraint evaluation happen between fits), so
/// per-stage wall times are additive on a serial run.
enum class RunStage : int {
  kSetup = 0,       ///< FairnessProblem::Create: ingest, induce groups
  kEncode,          ///< feature encoding: encoder Fit + train/val Transform
  kTrainerFit,      ///< black-box trainer Fit calls (includes tree binning)
  kWeightCompute,   ///< Eq. 12/21 example-weight derivation
  kPredict,         ///< train/val predictions of candidate models
  kConstraintEval,  ///< FP_j fairness-part evaluation
  kCheckpoint,      ///< checkpoint record serialization + snapshot writes
  kIngest,          ///< out-of-core ingest: CSV parse/encode/spill (§16)
};
inline constexpr int kNumRunStages = 8;

/// Stable snake_case name, e.g. "trainer_fit".
const char* RunStageName(RunStage stage);

/// Thread-safe per-run stage accumulator. One instance lives on the stack of
/// OmniFair::Train (or a bench harness); worker threads record through a
/// plain pointer with relaxed atomics, so profiling a parallel tuner needs
/// no locking. Stage wall time is summed across threads — on a run with
/// num_threads > 1 the busy stages can legitimately sum past elapsed wall.
class RunProfiler {
 public:
  /// Adds one timed call to `stage`. cpu_ns < 0 means "no CPU clock
  /// available" and leaves the CPU total untouched.
  void Record(RunStage stage, long long wall_ns, long long cpu_ns);

  long long Calls(RunStage stage) const;
  double WallUs(RunStage stage) const;
  /// Thread-CPU time spent inside the stage (0 when unavailable).
  double CpuUs(RunStage stage) const;

 private:
  struct Cell {
    std::atomic<long long> wall_ns{0};
    std::atomic<long long> cpu_ns{0};
    std::atomic<long long> calls{0};
  };
  std::array<Cell, kNumRunStages> cells_;
};

/// RAII stage timer: wall via steady_clock, CPU via the per-thread CPU clock
/// where the platform has one. A null profiler disables the timer entirely
/// (no clock calls) — pass the profiler pointer only when profiling is on.
class RunStageTimer {
 public:
  RunStageTimer(RunProfiler* profiler, RunStage stage);
  ~RunStageTimer();

  RunStageTimer(const RunStageTimer&) = delete;
  RunStageTimer& operator=(const RunStageTimer&) = delete;

 private:
  RunProfiler* profiler_;
  RunStage stage_;
  std::chrono::steady_clock::time_point wall_start_;
  long long cpu_start_ns_ = -1;
};

/// The aggregated profile of one tuning run, attached to
/// FairModel::run_profile (empty when telemetry is off). Rendered as a
/// fixed-width text table by `omnifair_cli explain` and as JSON via
/// --profile-out.
struct RunProfile {
  struct Stage {
    std::string name;
    long long calls = 0;
    double wall_us = 0.0;
    double cpu_us = 0.0;
  };

  std::string algorithm;  ///< "lambda_tuner" | "hill_climb" | "grid_search"
  int threads = 1;
  double total_wall_us = 0.0;
  /// Process CPU time over the run (all threads; 0 when unavailable).
  double total_cpu_us = 0.0;
  /// The instrumented stages plus a final "other" row holding the
  /// unattributed remainder, so the rows sum to total_wall_us on a serial
  /// run (the explain contract: within 10% of total wall).
  std::vector<Stage> stages;

  // Registry counter deltas over the run (MetricsRegistry snapshots taken
  // at Train entry/exit — concurrent Train calls in other threads bleed
  // into these, per-stage timers above do not).
  long long trainer_fits = 0;
  long long trainer_fit_failures = 0;
  long long weight_cache_hits = 0;    ///< PR 3 coefficient/weight-term cache
  long long weight_cache_misses = 0;
  long long bins_reused = 0;          ///< PR 5 shared feature binning
  double hist_build_us = 0.0;         ///< histogram build time (inside fits)
  long long pool_tasks = 0;
  double pool_busy_us = 0.0;          ///< summed pool task time (pool.task_us)
  long long checkpoint_writes = 0;
  long long checkpoint_bytes = 0;
  long long ingest_rows = 0;          ///< PR 10 out-of-core ingest (ingest.rows)
  long long ingest_chunks = 0;        ///< read(2) chunks consumed
  double ingest_parse_us = 0.0;       ///< parse+encode time inside ingest
  long long ingest_spill_bytes = 0;   ///< encoded bytes spilled to disk
  long long sgd_batches = 0;          ///< mini-batch SGD batches (sgd.batches)
  long long sgd_epochs = 0;

  bool empty() const { return stages.empty() && total_wall_us <= 0.0; }
  /// hits / (hits + misses); 0 when the cache was never consulted.
  double WeightCacheHitRate() const;
  /// pool busy time / (wall * threads), clamped to [0, 1]; 0 without tasks.
  double PoolUtilization() const;

  /// Fixed-width table + attribution lines (cache hit rates, binning, pool).
  std::string ToText() const;
  void WriteJson(JsonWriter& writer) const;
  std::string ToJson() const;
};

/// Assembles a RunProfile from the profiler's stage totals and the metrics
/// deltas between two registry snapshots bracketing the run. `total_wall_us`
/// is the run's elapsed wall clock; the "other" stage is its unattributed
/// remainder (clamped at 0 when parallel stage sums exceed it).
RunProfile BuildRunProfile(const RunProfiler& profiler,
                           const MetricsSnapshot& before,
                           const MetricsSnapshot& after,
                           const std::string& algorithm, int threads,
                           double total_wall_us, double total_cpu_us);

/// Process-wide CPU clock reading in ns (-1 when unavailable); Train brackets
/// the run with two readings to get total_cpu_us across worker threads.
long long ProcessCpuNowNs();

}  // namespace omnifair

#endif  // OMNIFAIR_CORE_RUN_PROFILE_H_
