#include "core/lambda_tuner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ml/logistic_regression.h"
#include "tests/testing_fairness.h"

namespace omnifair {
namespace {

using testing_fairness::MakeBiasedDataset;

std::unique_ptr<FairnessProblem> MakeProblem(const Dataset& train, const Dataset& val,
                                             const std::string& metric,
                                             double epsilon, Trainer* trainer) {
  auto problem = FairnessProblem::Create(
      train, val, {MakeSpec(GroupByAttribute("grp"), metric, epsilon)}, trainer);
  EXPECT_TRUE(problem.ok()) << problem.status();
  return std::move(*problem);
}

/// Lemma 2 empirically: for constant-coefficient metrics the training-set
/// fairness part FP(theta_lambda) is (approximately) non-decreasing in
/// lambda. We allow a small numeric slack since the LR fit is iterative.
TEST(LambdaTunerTest, Lemma2MonotonicityOnTrainingSet) {
  const Dataset train = MakeBiasedDataset(1500, 0.7, 0.25, 1);
  LogisticRegressionTrainer trainer;
  // Use the train split as "validation" so FP is measured on train, which
  // is the setting of Lemma 2.
  auto problem = MakeProblem(train, train, "sp", 0.03, &trainer);

  const double lambdas[] = {-0.4, -0.2, -0.1, -0.05, 0.0, 0.05, 0.1, 0.2, 0.4};
  double previous_fp = -2.0;
  for (double lambda : lambdas) {
    auto model = problem->FitWithLambdas({lambda}, nullptr);
    const double fp =
        problem->val_evaluator().FairnessPart(0, problem->PredictVal(*model));
    EXPECT_GE(fp, previous_fp - 0.02) << "lambda " << lambda;
    previous_fp = std::max(previous_fp, fp);
  }
}

TEST(LambdaTunerTest, TuneSingleSatisfiesSp) {
  const Dataset data = MakeBiasedDataset(3000, 0.7, 0.25, 2);
  const Dataset train = data.SelectRows([&] {
    std::vector<size_t> idx;
    for (size_t i = 0; i < 2000; ++i) idx.push_back(i);
    return idx;
  }());
  const Dataset val = data.SelectRows([&] {
    std::vector<size_t> idx;
    for (size_t i = 2000; i < 3000; ++i) idx.push_back(i);
    return idx;
  }());
  LogisticRegressionTrainer trainer;
  auto problem = MakeProblem(train, val, "sp", 0.03, &trainer);

  const LambdaTuner tuner;
  TuneResult result = tuner.TuneSingle(*problem);
  EXPECT_TRUE(result.satisfied);
  ASSERT_NE(result.model, nullptr);
  EXPECT_LE(std::fabs(result.val_fairness_parts[0]), 0.03 + 1e-9);
  EXPECT_GT(result.models_trained, 1);
  // The tuned model keeps most of the accuracy.
  EXPECT_GT(result.val_accuracy, 0.6);
}

TEST(LambdaTunerTest, AlreadySatisfiedReturnsImmediately) {
  const Dataset train = MakeBiasedDataset(800, 0.5, 0.5, 3);  // no bias
  LogisticRegressionTrainer trainer;
  auto problem = MakeProblem(train, train, "sp", 0.2, &trainer);
  const LambdaTuner tuner;
  TuneResult result = tuner.TuneSingle(*problem);
  EXPECT_TRUE(result.satisfied);
  EXPECT_DOUBLE_EQ(result.lambda, 0.0);
  EXPECT_EQ(result.models_trained, 1);  // just the theta_0 fit
}

TEST(LambdaTunerTest, SmallerEpsilonCostsAccuracy) {
  const Dataset train = MakeBiasedDataset(2500, 0.75, 0.2, 4);
  LogisticRegressionTrainer trainer;
  auto loose_problem = MakeProblem(train, train, "sp", 0.10, &trainer);
  auto tight_problem = MakeProblem(train, train, "sp", 0.01, &trainer);
  const LambdaTuner tuner;
  TuneResult loose = tuner.TuneSingle(*loose_problem);
  TuneResult tight = tuner.TuneSingle(*tight_problem);
  ASSERT_TRUE(loose.satisfied);
  ASSERT_TRUE(tight.satisfied);
  // Tighter constraints cannot be more accurate (allow tiny noise).
  EXPECT_LE(tight.val_accuracy, loose.val_accuracy + 0.01);
  // And the tuned lambda magnitude is larger for the tighter budget.
  EXPECT_GE(std::fabs(tight.lambda), std::fabs(loose.lambda));
}

TEST(LambdaTunerTest, FdrLinearSearchSatisfies) {
  const Dataset data = MakeBiasedDataset(2400, 0.7, 0.3, 5);
  std::vector<size_t> train_idx;
  std::vector<size_t> val_idx;
  for (size_t i = 0; i < 1600; ++i) train_idx.push_back(i);
  for (size_t i = 1600; i < 2400; ++i) val_idx.push_back(i);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      data.SelectRows(train_idx), data.SelectRows(val_idx),
      {MakeSpec(GroupByAttribute("grp"), "fdr", 0.04)}, &trainer);
  ASSERT_TRUE(problem.ok());

  const LambdaTuner tuner;
  TuneResult result = tuner.TuneSingle(**problem);
  ASSERT_NE(result.model, nullptr);
  if (result.satisfied) {
    EXPECT_LE(std::fabs(result.val_fairness_parts[0]), 0.04 + 1e-9);
  }
}

TEST(LambdaTunerTest, InfeasibleReportsUnsatisfied) {
  // A constraint on a metric the model cannot move: epsilon = 0 exactly is
  // essentially unreachable for noisy LR on biased data within the step
  // budget, so the tuner must come back unsatisfied rather than loop.
  const Dataset train = MakeBiasedDataset(400, 0.9, 0.1, 6);
  LogisticRegressionTrainer trainer;
  auto problem = MakeProblem(train, train, "sp", 0.0, &trainer);
  TuneOptions options;
  options.max_doublings = 3;  // keep the test fast
  options.tau = 0.01;
  const LambdaTuner tuner(options);
  TuneResult result = tuner.TuneSingle(*problem);
  ASSERT_NE(result.model, nullptr);  // best-effort model always returned
  // Either it got lucky and satisfied exactly 0, or reported infeasible.
  if (!result.satisfied) {
    EXPECT_GT(std::fabs(result.val_fairness_parts[0]), 0.0);
  }
}

TEST(LambdaTunerTest, SubsampledBoundingStillSatisfies) {
  // Future-work extension: bounding-stage fits on a 30% subsample must not
  // change the contract — the returned (full-data) model satisfies epsilon.
  const Dataset data = MakeBiasedDataset(3000, 0.7, 0.25, 8);
  std::vector<size_t> train_idx;
  std::vector<size_t> val_idx;
  for (size_t i = 0; i < 2000; ++i) train_idx.push_back(i);
  for (size_t i = 2000; i < 3000; ++i) val_idx.push_back(i);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      data.SelectRows(train_idx), data.SelectRows(val_idx),
      {MakeSpec(GroupByAttribute("grp"), "sp", 0.05)}, &trainer);
  ASSERT_TRUE(problem.ok());
  TuneOptions options;
  options.bounding_subsample = 0.3;
  const LambdaTuner tuner(options);
  TuneResult result = tuner.TuneSingle(**problem);
  EXPECT_TRUE(result.satisfied);
  EXPECT_LE(std::fabs(result.val_fairness_parts[0]), 0.05 + 1e-9);
}

TEST(LambdaTunerTest, CoordinateTuningKeepsOtherLambdasFixed) {
  const Dataset train = MakeBiasedDataset(1200, 0.7, 0.25, 7);
  LogisticRegressionTrainer trainer;
  auto problem = FairnessProblem::Create(
      train, train,
      {MakeSpec(GroupByAttribute("grp"), "sp", 0.05),
       MakeSpec(GroupByAttribute("grp"), "fnr", 0.05)},
      &trainer);
  ASSERT_TRUE(problem.ok());
  std::vector<double> lambdas = {0.0, 0.123};
  const LambdaTuner tuner;
  TuneResult result = tuner.TuneCoordinate(**problem, 0, &lambdas, nullptr);
  EXPECT_DOUBLE_EQ(lambdas[1], 0.123);
  EXPECT_DOUBLE_EQ(lambdas[0], result.lambda);
}

}  // namespace
}  // namespace omnifair
