#include "data/chunked_dataset.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <utility>

#include "util/logging.h"
#include "util/snapshot_io.h"
#include "util/telemetry.h"

namespace omnifair {
namespace {

constexpr uint32_t kChunkedMagic = 0x4443464F;  // "OFCD" little-endian
constexpr uint32_t kChunkedVersion = 2;
constexpr size_t kHeaderBytes = 16;
constexpr size_t kTrailerBytes = 16;
/// u16 category codes reserve one value for the "unseen" sentinel, so a
/// dictionary may hold at most 65534 real categories.
constexpr size_t kMaxU16Categories = 65534;

/// Serializes one packed block payload: rows u64 | labels u8[] |
/// groups i32[] | floats raw f32[] | codes raw u16[]. The float/code
/// payloads are written as raw little-endian bytes — the format is
/// little-endian by contract, matching every other binary artifact in the
/// library.
std::vector<uint8_t> SerializeBlock(const CompactBlock& block) {
  const size_t rows = static_cast<size_t>(block.rows);
  BinaryWriter writer;
  writer.Reserve(8 + rows * (1 + 4) + block.floats.size() * sizeof(float) +
                 block.codes.size() * sizeof(uint16_t));
  writer.U64(block.rows);
  writer.RawBytes(block.labels.data(), rows);
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // Host i32/u16 are already the wire format; copy in bulk.
  writer.RawBytes(reinterpret_cast<const uint8_t*>(block.groups.data()),
                  rows * sizeof(int32_t));
  writer.RawBytes(reinterpret_cast<const uint8_t*>(block.floats.data()),
                  block.floats.size() * sizeof(float));
  writer.RawBytes(reinterpret_cast<const uint8_t*>(block.codes.data()),
                  block.codes.size() * sizeof(uint16_t));
#else
  for (size_t i = 0; i < rows; ++i) writer.I32(block.groups[i]);
  writer.RawBytes(reinterpret_cast<const uint8_t*>(block.floats.data()),
                  block.floats.size() * sizeof(float));
  for (const uint16_t code : block.codes) {
    writer.U8(static_cast<uint8_t>(code & 0xFF));
    writer.U8(static_cast<uint8_t>(code >> 8));
  }
#endif
  return writer.TakeBuffer();
}

/// Packs a dense block into the layout's float/code streams, validating that
/// the dense values actually fit the declared segments.
Status PackDenseBlock(const ChunkedLayout& layout, const DatasetBlock& block,
                      CompactBlock* out) {
  const size_t rows = block.features.rows();
  const size_t floats_per_row = layout.FloatsPerRow();
  const size_t codes_per_row = layout.CodesPerRow();
  out->rows = static_cast<uint64_t>(rows);
  out->labels.resize(rows);
  out->groups.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    out->labels[r] = static_cast<uint8_t>(block.labels[r]);
    out->groups[r] = static_cast<int32_t>(block.groups[r]);
  }
  out->floats.resize(rows * floats_per_row);
  out->codes.resize(rows * codes_per_row);
  for (size_t r = 0; r < rows; ++r) {
    const float* src = block.features.RowF(r);
    float* float_dst = out->floats.data() + r * floats_per_row;
    uint16_t* code_dst = out->codes.data() + r * codes_per_row;
    size_t col = 0;
    for (const ChunkedSegment& segment : layout.segments) {
      const size_t width = segment.width;
      switch (segment.kind) {
        case SegmentKind::kNumericF32:
          std::memcpy(float_dst, src + col, width * sizeof(float));
          float_dst += width;
          break;
        case SegmentKind::kOneHotU16: {
          size_t code = width;  // sentinel: all columns zero
          for (size_t i = 0; i < width; ++i) {
            const float value = src[col + i];
            if (value == 0.0f) continue;
            if (value != 1.0f || code != width) {
              return Status::InvalidArgument(
                  "block row " + std::to_string(r) + " feature " +
                  std::to_string(col + i) +
                  " does not fit the one-hot segment layout");
            }
            code = i;
          }
          *code_dst++ = static_cast<uint16_t>(code);
          break;
        }
        case SegmentKind::kCodeU16: {
          const float value = src[col];
          if (!(value >= 0.0f && value < 65536.0f) ||
              static_cast<float>(static_cast<uint32_t>(value)) != value) {
            return Status::InvalidArgument(
                "block row " + std::to_string(r) + " feature " +
                std::to_string(col) + " is not a u16-range category code");
          }
          *code_dst++ = static_cast<uint16_t>(value);
          break;
        }
      }
      col += width;
    }
  }
  return Status::Ok();
}

}  // namespace

// --- ChunkedLayout ----------------------------------------------------------

ChunkedLayout ChunkedLayout::DenseF32(uint32_t num_features) {
  ChunkedLayout layout;
  if (num_features > 0) {
    layout.segments.push_back({SegmentKind::kNumericF32, num_features});
  }
  return layout;
}

Result<ChunkedLayout> ChunkedLayout::FromPlans(
    const std::vector<FeatureEncoder::ColumnPlan>& plans,
    bool one_hot_categorical) {
  ChunkedLayout layout;
  for (const FeatureEncoder::ColumnPlan& plan : plans) {
    if (plan.type == ColumnType::kNumeric) {
      // Merge adjacent numeric columns into one run so a row's numeric
      // values pack (and later densify) with a single memcpy.
      if (!layout.segments.empty() &&
          layout.segments.back().kind == SegmentKind::kNumericF32) {
        layout.segments.back().width += 1;
      } else {
        layout.segments.push_back({SegmentKind::kNumericF32, 1});
      }
      continue;
    }
    if (plan.num_categories > kMaxU16Categories) {
      return Status::InvalidArgument(
          "column '" + plan.name + "' has " +
          std::to_string(plan.num_categories) +
          " categories; the packed u16 code layout supports at most " +
          std::to_string(kMaxU16Categories));
    }
    if (one_hot_categorical) {
      layout.segments.push_back(
          {SegmentKind::kOneHotU16, static_cast<uint32_t>(plan.num_categories)});
    } else {
      layout.segments.push_back({SegmentKind::kCodeU16, 1});
    }
  }
  return layout;
}

size_t ChunkedLayout::DenseWidth() const {
  size_t width = 0;
  for (const ChunkedSegment& segment : segments) width += segment.width;
  return width;
}

size_t ChunkedLayout::FloatsPerRow() const {
  size_t floats = 0;
  for (const ChunkedSegment& segment : segments) {
    if (segment.kind == SegmentKind::kNumericF32) floats += segment.width;
  }
  return floats;
}

size_t ChunkedLayout::CodesPerRow() const {
  size_t codes = 0;
  for (const ChunkedSegment& segment : segments) {
    if (segment.kind != SegmentKind::kNumericF32) codes += 1;
  }
  return codes;
}

// --- Writer -----------------------------------------------------------------

ChunkedDatasetWriter::ChunkedDatasetWriter(std::string path,
                                           std::string temp_path, int fd,
                                           ChunkedLayout layout)
    : path_(std::move(path)),
      temp_path_(std::move(temp_path)),
      fd_(fd),
      layout_(std::move(layout)),
      num_features_(static_cast<uint32_t>(layout_.DenseWidth())) {}

ChunkedDatasetWriter::ChunkedDatasetWriter(ChunkedDatasetWriter&& other) noexcept
    : path_(std::move(other.path_)),
      temp_path_(std::move(other.temp_path_)),
      fd_(other.fd_),
      layout_(std::move(other.layout_)),
      num_features_(other.num_features_),
      offset_(other.offset_),
      total_rows_(other.total_rows_),
      blocks_(std::move(other.blocks_)) {
  other.fd_ = -1;
}

ChunkedDatasetWriter& ChunkedDatasetWriter::operator=(
    ChunkedDatasetWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    path_ = std::move(other.path_);
    temp_path_ = std::move(other.temp_path_);
    fd_ = other.fd_;
    layout_ = std::move(other.layout_);
    num_features_ = other.num_features_;
    offset_ = other.offset_;
    total_rows_ = other.total_rows_;
    blocks_ = std::move(other.blocks_);
    other.fd_ = -1;
  }
  return *this;
}

ChunkedDatasetWriter::~ChunkedDatasetWriter() { Abandon(); }

void ChunkedDatasetWriter::Abandon() {
  if (fd_ < 0) return;
  ::close(fd_);
  ::unlink(temp_path_.c_str());
  fd_ = -1;
}

Result<ChunkedDatasetWriter> ChunkedDatasetWriter::Create(
    const std::string& path, uint32_t num_features) {
  return Create(path, ChunkedLayout::DenseF32(num_features));
}

Result<ChunkedDatasetWriter> ChunkedDatasetWriter::Create(
    const std::string& path, ChunkedLayout layout) {
  std::string temp_path = path + ".tmp";
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError(temp_path, "open");
  ChunkedDatasetWriter writer(path, std::move(temp_path), fd, std::move(layout));
  BinaryWriter header;
  header.U32(kChunkedMagic);
  header.U32(kChunkedVersion);
  header.U32(0);  // flags
  header.U32(0);  // reserved
  Status status = WriteFd(fd, writer.temp_path_, header.buffer().data(),
                          header.buffer().size());
  if (!status.ok()) return status;  // writer dtor unlinks the temp file
  writer.offset_ = kHeaderBytes;
  return writer;
}

Status ChunkedDatasetWriter::AppendBlock(const DatasetBlock& block) {
  if (fd_ < 0) {
    return Status::InvalidArgument("AppendBlock on a closed chunked writer");
  }
  if (!block.features.is_float32()) {
    return Status::InvalidArgument("chunked blocks require float32 features");
  }
  const size_t rows = block.features.rows();
  if (block.features.cols() != num_features_ || block.labels.size() != rows ||
      block.groups.size() != rows) {
    std::ostringstream msg;
    msg << "block shape mismatch: features " << rows << "x"
        << block.features.cols() << ", " << block.labels.size() << " labels, "
        << block.groups.size() << " groups, expected " << num_features_
        << " features";
    return Status::InvalidArgument(msg.str());
  }
  CompactBlock packed;
  Status status = PackDenseBlock(layout_, block, &packed);
  if (!status.ok()) return status;
  return AppendPayload(SerializeBlock(packed), packed.rows);
}

Status ChunkedDatasetWriter::AppendBlock(const CompactBlock& block) {
  if (fd_ < 0) {
    return Status::InvalidArgument("AppendBlock on a closed chunked writer");
  }
  const size_t rows = static_cast<size_t>(block.rows);
  if (block.labels.size() != rows || block.groups.size() != rows ||
      block.floats.size() != rows * layout_.FloatsPerRow() ||
      block.codes.size() != rows * layout_.CodesPerRow()) {
    std::ostringstream msg;
    msg << "compact block shape mismatch: " << rows << " rows, "
        << block.labels.size() << " labels, " << block.groups.size()
        << " groups, " << block.floats.size() << " floats (want "
        << rows * layout_.FloatsPerRow() << "), " << block.codes.size()
        << " codes (want " << rows * layout_.CodesPerRow() << ")";
    return Status::InvalidArgument(msg.str());
  }
  return AppendPayload(SerializeBlock(block), block.rows);
}

Status ChunkedDatasetWriter::AppendPayload(const std::vector<uint8_t>& payload,
                                           uint64_t rows) {
  // Transient errors (the io.short_write fault site reports EINTR) retry with
  // backoff; ENOSPC is permanent and surfaces as kDataLoss immediately. A
  // short write that partly landed would corrupt the running offset, so the
  // retry rewrites the whole payload at the recorded offset via pwrite-like
  // truncation: we simply seek back by reopening at offset_ — the fd is
  // append-positioned only by our own writes, so lseek is enough.
  Status status = RetryIo({}, [&]() -> Status {
    if (::lseek(fd_, static_cast<off_t>(offset_), SEEK_SET) < 0) {
      return IoError(temp_path_, "lseek");
    }
    return WriteFd(fd_, temp_path_, payload.data(), payload.size());
  });
  if (!status.ok()) return status;
  BlockIndexEntry entry;
  entry.offset = offset_;
  entry.rows = rows;
  entry.payload_bytes = static_cast<uint64_t>(payload.size());
  entry.crc32 = Crc32(payload.data(), payload.size());
  blocks_.push_back(entry);
  offset_ += payload.size();
  total_rows_ += rows;
  OF_COUNTER_ADD("ingest.spill_bytes", static_cast<int64_t>(payload.size()));
  return Status::Ok();
}

Status ChunkedDatasetWriter::Finalize(const std::string& label_name,
                                      const std::string& group_column,
                                      const std::vector<std::string>& group_names,
                                      const std::string& encoder_text) {
  if (fd_ < 0) {
    return Status::InvalidArgument("Finalize on a closed chunked writer");
  }
  BinaryWriter footer;
  footer.U32(num_features_);
  footer.U32(static_cast<uint32_t>(layout_.segments.size()));
  for (const ChunkedSegment& segment : layout_.segments) {
    footer.U8(static_cast<uint8_t>(segment.kind));
    footer.U32(segment.width);
  }
  footer.U64(total_rows_);
  footer.String(label_name);
  footer.String(group_column);
  footer.U32(static_cast<uint32_t>(group_names.size()));
  for (const std::string& name : group_names) footer.String(name);
  footer.String(encoder_text);
  footer.U64(static_cast<uint64_t>(blocks_.size()));
  for (const BlockIndexEntry& entry : blocks_) {
    footer.U64(entry.offset);
    footer.U64(entry.rows);
    footer.U64(entry.payload_bytes);
    footer.U32(entry.crc32);
  }
  const uint32_t footer_crc = Crc32(footer.buffer().data(), footer.size());
  BinaryWriter trailer;
  trailer.U64(offset_);  // footer offset
  trailer.U32(footer_crc);
  trailer.U32(kChunkedMagic);

  Status status = RetryIo({}, [&]() -> Status {
    if (::lseek(fd_, static_cast<off_t>(offset_), SEEK_SET) < 0) {
      return IoError(temp_path_, "lseek");
    }
    Status s = WriteFd(fd_, temp_path_, footer.buffer().data(), footer.size());
    if (!s.ok()) return s;
    return WriteFd(fd_, temp_path_, trailer.buffer().data(), trailer.size());
  });
  if (!status.ok()) return status;
  if (::fsync(fd_) != 0) return IoError(temp_path_, "fsync");
  if (::close(fd_) != 0) {
    fd_ = -1;
    ::unlink(temp_path_.c_str());
    return IoError(temp_path_, "close");
  }
  fd_ = -1;
  if (::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    Status rename_status = IoError(path_, "rename");
    ::unlink(temp_path_.c_str());
    return rename_status;
  }
  return Status::Ok();
}

// --- Reader -----------------------------------------------------------------

ChunkedDataset::ChunkedDataset(std::string path, int fd, ChunkedDatasetMeta meta)
    : path_(std::move(path)), fd_(fd), meta_(std::move(meta)) {}

ChunkedDataset::ChunkedDataset(ChunkedDataset&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_), meta_(std::move(other.meta_)) {
  other.fd_ = -1;
}

ChunkedDataset& ChunkedDataset::operator=(ChunkedDataset&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    meta_ = std::move(other.meta_);
    other.fd_ = -1;
  }
  return *this;
}

ChunkedDataset::~ChunkedDataset() {
  if (fd_ >= 0) ::close(fd_);
}

Result<ChunkedDataset> ChunkedDataset::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError(path, "open");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status = IoError(path, "fstat");
    ::close(fd);
    return status;
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  auto fail = [&](Status status) -> Result<ChunkedDataset> {
    ::close(fd);
    return status;
  };
  if (file_size < kHeaderBytes + kTrailerBytes) {
    return fail(Status::DataLoss("chunked dataset " + path + " is " +
                                 std::to_string(file_size) +
                                 " bytes; too short for header + trailer"));
  }

  uint8_t header_bytes[kHeaderBytes];
  Status status = PreadFull(fd, path, 0, header_bytes, kHeaderBytes);
  if (!status.ok()) return fail(status);
  BinaryReader header(header_bytes, kHeaderBytes);
  uint32_t magic = 0, version = 0, flags = 0, reserved = 0;
  header.U32(&magic);
  header.U32(&version);
  header.U32(&flags);
  header.U32(&reserved);
  if (magic != kChunkedMagic) {
    return fail(Status::InvalidArgument(path + " is not a chunked dataset "
                                        "(bad magic)"));
  }
  if (version != kChunkedVersion) {
    // The packed-block layout landed before any other version shipped, so
    // reads are exact-match: there are no older files to stay compatible
    // with, and newer writers may pack differently.
    return fail(Status::InvalidArgument(
        "chunked dataset " + path + " has version " + std::to_string(version) +
        "; this build reads only version " + std::to_string(kChunkedVersion)));
  }

  uint8_t trailer_bytes[kTrailerBytes];
  status = PreadFull(fd, path, file_size - kTrailerBytes, trailer_bytes,
                     kTrailerBytes);
  if (!status.ok()) return fail(status);
  BinaryReader trailer(trailer_bytes, kTrailerBytes);
  uint64_t footer_offset = 0;
  uint32_t footer_crc = 0, trailer_magic = 0;
  trailer.U64(&footer_offset);
  trailer.U32(&footer_crc);
  trailer.U32(&trailer_magic);
  if (trailer_magic != kChunkedMagic) {
    return fail(Status::DataLoss("chunked dataset " + path +
                                 " has a corrupt trailer (bad magic)"));
  }
  if (footer_offset < kHeaderBytes ||
      footer_offset > file_size - kTrailerBytes) {
    return fail(Status::DataLoss("chunked dataset " + path +
                                 " has an implausible footer offset " +
                                 std::to_string(footer_offset)));
  }
  const size_t footer_size =
      static_cast<size_t>(file_size - kTrailerBytes - footer_offset);
  std::vector<uint8_t> footer_bytes(footer_size);
  status = PreadFull(fd, path, footer_offset, footer_bytes.data(), footer_size);
  if (!status.ok()) return fail(status);
  if (Crc32(footer_bytes.data(), footer_size) != footer_crc) {
    return fail(Status::DataLoss("chunked dataset " + path +
                                 " footer CRC mismatch"));
  }

  ChunkedDatasetMeta meta;
  BinaryReader footer(footer_bytes.data(), footer_size);
  uint32_t num_groups = 0;
  uint64_t num_blocks = 0;
  uint32_t num_segments = 0;
  bool ok = footer.U32(&meta.num_features) && footer.U32(&num_segments);
  // Each segment is 5 bytes; a count that cannot fit is corruption.
  if (ok && num_segments > footer.remaining() / 5) ok = false;
  for (uint32_t i = 0; ok && i < num_segments; ++i) {
    uint8_t kind = 0;
    ChunkedSegment segment;
    ok = footer.U8(&kind) && footer.U32(&segment.width);
    if (ok) {
      if (kind > static_cast<uint8_t>(SegmentKind::kCodeU16)) {
        return fail(Status::DataLoss("chunked dataset " + path +
                                     " has an unknown layout segment kind " +
                                     std::to_string(kind)));
      }
      segment.kind = static_cast<SegmentKind>(kind);
      meta.layout.segments.push_back(segment);
    }
  }
  if (ok && meta.layout.DenseWidth() != meta.num_features) {
    return fail(Status::DataLoss(
        "chunked dataset " + path + " layout expands to " +
        std::to_string(meta.layout.DenseWidth()) + " columns but declares " +
        std::to_string(meta.num_features) + " features"));
  }
  ok = ok && footer.U64(&meta.total_rows) &&
            footer.String(&meta.label_name) && footer.String(&meta.group_column) &&
            footer.U32(&num_groups);
  for (uint32_t i = 0; ok && i < num_groups; ++i) {
    std::string name;
    ok = footer.String(&name);
    if (ok) meta.group_names.push_back(std::move(name));
  }
  ok = ok && footer.String(&meta.encoder_text) && footer.U64(&num_blocks);
  // Each index entry is 28 bytes; a count that cannot fit is corruption.
  if (ok && num_blocks > footer.remaining() / 28 + 1) ok = false;
  for (uint64_t i = 0; ok && i < num_blocks; ++i) {
    BlockIndexEntry entry;
    ok = footer.U64(&entry.offset) && footer.U64(&entry.rows) &&
         footer.U64(&entry.payload_bytes) && footer.U32(&entry.crc32);
    if (ok) {
      if (entry.offset < kHeaderBytes || entry.payload_bytes == 0 ||
          entry.offset + entry.payload_bytes > footer_offset) {
        return fail(Status::DataLoss("chunked dataset " + path + " block " +
                                     std::to_string(i) +
                                     " index entry is out of bounds"));
      }
      meta.blocks.push_back(entry);
    }
  }
  if (!ok) {
    return fail(Status::DataLoss("chunked dataset " + path +
                                 " footer is truncated: " +
                                 footer.status().message()));
  }
  return ChunkedDataset(path, fd, std::move(meta));
}

Result<DatasetBlock> ChunkedDataset::MaterializeBlock(size_t index) const {
  if (index >= meta_.blocks.size()) {
    return Status::InvalidArgument("block index " + std::to_string(index) +
                                   " out of range (have " +
                                   std::to_string(meta_.blocks.size()) + ")");
  }
  const BlockIndexEntry& entry = meta_.blocks[index];
  const size_t payload_size = static_cast<size_t>(entry.payload_bytes);

  // Map a page-aligned window around the payload; fall back to a heap read
  // when mmap is unavailable. Either way the payload is released before
  // returning, so resident memory stays bounded by one block.
  const long page = ::sysconf(_SC_PAGESIZE);
  const uint64_t page_size = page > 0 ? static_cast<uint64_t>(page) : 4096;
  const uint64_t map_start = entry.offset & ~(page_size - 1);
  const size_t map_delta = static_cast<size_t>(entry.offset - map_start);
  const size_t map_len = payload_size + map_delta;
  const uint8_t* payload = nullptr;
  void* mapped = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd_,
                        static_cast<off_t>(map_start));
  std::vector<uint8_t> heap;
  if (mapped != MAP_FAILED) {
    payload = static_cast<const uint8_t*>(mapped) + map_delta;
  } else {
    heap.resize(payload_size);
    Status status = PreadFull(fd_, path_, entry.offset, heap.data(), payload_size);
    if (!status.ok()) return status;
    payload = heap.data();
  }
  auto finish = [&]() {
    if (mapped != MAP_FAILED) ::munmap(mapped, map_len);
  };

  if (Crc32(payload, payload_size) != entry.crc32) {
    finish();
    return Status::DataLoss("chunked dataset " + path_ + " block " +
                            std::to_string(index) + " CRC mismatch");
  }

  BinaryReader reader(payload, payload_size);
  uint64_t rows = 0;
  DatasetBlock block;
  auto corrupt = [&](const std::string& what) -> Result<DatasetBlock> {
    finish();
    return Status::DataLoss("chunked dataset " + path_ + " block " +
                            std::to_string(index) + ": " + what);
  };
  if (!reader.U64(&rows)) return corrupt("missing row count");
  if (rows != entry.rows) return corrupt("row count disagrees with the index");
  const size_t n = static_cast<size_t>(rows);
  const size_t floats_per_row = meta_.layout.FloatsPerRow();
  const size_t codes_per_row = meta_.layout.CodesPerRow();
  const size_t float_bytes = n * floats_per_row * sizeof(float);
  const size_t code_bytes = n * codes_per_row * sizeof(uint16_t);
  if (payload_size != 8 + n + 4 * n + float_bytes + code_bytes) {
    return corrupt("payload size disagrees with the schema");
  }
  block.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint8_t label = 0;
    if (!reader.U8(&label)) return corrupt("truncated labels");
    block.labels[i] = static_cast<int>(label);
  }
  block.groups.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t code = 0;
    if (!reader.I32(&code)) return corrupt("truncated groups");
    block.groups[i] = static_cast<int>(code);
  }
  // Densify the packed streams back into the float32 matrix: numeric runs
  // copy verbatim, one-hot codes scatter a single 1.0 (the sentinel leaves
  // the zero-initialized row untouched), raw codes widen to float.
  const uint8_t* float_base = payload + 8 + n + 4 * n;
  const uint8_t* code_base = float_base + float_bytes;
  block.features = Matrix::Float32(n, meta_.num_features);
  for (size_t r = 0; r < n; ++r) {
    float* dst = block.features.RowF(r);
    const uint8_t* float_src = float_base + r * floats_per_row * sizeof(float);
    const uint8_t* code_src = code_base + r * codes_per_row * sizeof(uint16_t);
    for (const ChunkedSegment& segment : meta_.layout.segments) {
      if (segment.kind == SegmentKind::kNumericF32) {
        std::memcpy(dst, float_src, segment.width * sizeof(float));
        float_src += segment.width * sizeof(float);
        dst += segment.width;
        continue;
      }
      uint16_t code = 0;
      std::memcpy(&code, code_src, sizeof(uint16_t));
      code_src += sizeof(uint16_t);
      if (segment.kind == SegmentKind::kOneHotU16) {
        if (code < segment.width) dst[code] = 1.0f;
      } else {
        dst[0] = static_cast<float>(code);
      }
      dst += segment.width;
    }
  }
  finish();
  return block;
}

Result<FeatureEncoder> ChunkedDataset::LoadEncoder() const {
  std::istringstream is(meta_.encoder_text);
  return FeatureEncoder::Deserialize(is);
}

}  // namespace omnifair
