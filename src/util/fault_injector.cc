#include "util/fault_injector.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>

namespace omnifair {
namespace {

struct SiteState {
  int fire_at = 1;
  bool repeat = false;
  long long calls = 0;
};

std::atomic<bool> g_any_armed{false};
std::atomic<long long> g_clock_skew_micros{0};
std::mutex g_mutex;

std::map<std::string, SiteState>& Sites() {
  static auto* sites = new std::map<std::string, SiteState>();
  return *sites;
}

}  // namespace

void FaultInjector::Arm(const std::string& site, int fire_at, bool repeat) {
  std::lock_guard<std::mutex> lock(g_mutex);
  SiteState state;
  state.fire_at = fire_at;
  state.repeat = repeat;
  Sites()[site] = state;
  g_any_armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Sites().erase(site);
  if (Sites().empty()) g_any_armed.store(false, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  Sites().clear();
  g_any_armed.store(false, std::memory_order_relaxed);
  g_clock_skew_micros.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(const std::string& site) {
  if (!g_any_armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = Sites().find(site);
  if (it == Sites().end()) return false;
  SiteState& state = it->second;
  ++state.calls;
  return state.repeat ? state.calls >= state.fire_at : state.calls == state.fire_at;
}

double FaultInjector::CorruptDouble(const std::string& site, double value) {
  return ShouldFail(site) ? std::numeric_limits<double>::quiet_NaN() : value;
}

void FaultInjector::AdvanceClock(double seconds) {
  g_clock_skew_micros.fetch_add(static_cast<long long>(std::llround(seconds * 1e6)),
                                std::memory_order_relaxed);
}

double FaultInjector::ClockSkewSeconds() {
  return static_cast<double>(g_clock_skew_micros.load(std::memory_order_relaxed)) *
         1e-6;
}

long long FaultInjector::CallCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.calls;
}

}  // namespace omnifair
