#ifndef OMNIFAIR_UTIL_STATUS_H_
#define OMNIFAIR_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace omnifair {

/// Error categories used across the library. Mirrors the failure modes the
/// paper's experiments distinguish: infeasible fairness problems (NA(1)),
/// unsupported model/constraint combinations (NA(2)), and plain bad input.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  /// No hyperparameter setting satisfies the declared constraint(s) on the
  /// validation set ("NA(1)" in Table 5 of the paper).
  kInfeasible = 2,
  /// The method does not support the requested model or constraint
  /// ("NA(2)" in Table 5 of the paper).
  kUnsupported = 3,
  kInternal = 4,
  /// A TrainBudget (wall-clock deadline or model cap) expired before the
  /// search finished; any model returned alongside is best-effort.
  kDeadlineExceeded = 5,
  /// Persisted bytes are unrecoverable: a truncated or bit-flipped snapshot
  /// (CRC mismatch), a malformed model file, or a failed durable write.
  kDataLoss = 6,
  /// A transient IO condition (EINTR, EAGAIN, EBUSY...); the operation is
  /// safe to retry — see RetryIo in util/snapshot_io.h.
  kUnavailable = 7,
};

/// Human-readable name of a status code, e.g. "INFEASIBLE".
std::string StatusCodeToString(StatusCode code);

/// A lightweight status object: the library does not throw exceptions across
/// public API boundaries (see DESIGN.md §7); fallible operations return
/// Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status Infeasible(std::string message) {
    return Status(StatusCode::kInfeasible, std::move(message));
  }
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Symbolic errno name ("ENOENT", "ENOSPC", ...); "errno <n>" for values
/// outside the common set.
std::string ErrnoName(int err);

/// Uniform IO failure: "<op> <path>: <ERRNO_NAME> (<strerror>)". Captures
/// `errno` at call time unless `err` is passed explicitly. The status code is
/// derived from the errno class: bad-path errnos (ENOENT, EACCES...) map to
/// kInvalidArgument, transient ones (EINTR, EAGAIN...) to kUnavailable, a
/// zero errno (stream failure with no OS detail) to kInternal, and everything
/// else (EIO, ENOSPC...) to kDataLoss. Every file-touching Status in the
/// library is built through this helper so messages stay grep-able.
Status IoError(const std::string& path, const std::string& op);
Status IoError(const std::string& path, const std::string& op, int err);

/// Minimal StatusOr-like holder: either a value or a non-OK status.
template <typename T>
class Result {
 public:
  /// Implicit from value/status mirrors absl::StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace omnifair

#endif  // OMNIFAIR_UTIL_STATUS_H_
