// Reproduces Table 8: grid search vs. marginal hill climbing for the
// two-constraint COMPAS workload (SP + FNR), sweeping epsilon. Expected
// shape: whenever grid search finds a feasible Lambda, hill climbing also
// does (often at epsilons where the grid's resolution already fails), at
// roughly an order of magnitude less wall-clock time.

#include "bench/bench_common.h"

#include "core/grid_search.h"
#include "core/hill_climbing.h"
#include "core/problem.h"

namespace omnifair {
namespace bench {
namespace {

void Run() {
  PrintHeader("Table 8: grid search vs hill climbing (COMPAS, SP + FNR, LR)");
  std::printf("%-8s %6s %6s %12s %10s %11s %10s\n", "epsilon", "Grid", "HC",
              "Grid time(s)", "HC time(s)", "Grid fits", "HC fits");

  const GroupingFunction groups = MainGroups("compas");
  const Dataset data = MakeBenchDataset("compas", 700);
  const TrainValTestSplit split = SplitDefault(data, 800);

  for (double epsilon : {0.01, 0.02, 0.03, 0.04, 0.05, 0.06}) {
    const std::vector<FairnessSpec> specs = {MakeSpec(groups, "sp", epsilon),
                                             MakeSpec(groups, "fnr", epsilon)};

    auto grid_trainer = MakeTrainer("lr");
    auto grid_problem =
        FairnessProblem::Create(split.train, split.val, specs, grid_trainer.get());
    Stopwatch grid_watch;
    GridSearchOptions grid_options;
    grid_options.points_per_dim = 13;  // 169 fits for k = 2
    grid_options.max_lambda = 0.4;
    const GridSearchTuner grid(grid_options);
    MultiTuneResult grid_result = grid.Run(**grid_problem);
    const double grid_seconds = grid_watch.ElapsedSeconds();

    auto hc_trainer = MakeTrainer("lr");
    auto hc_problem =
        FairnessProblem::Create(split.train, split.val, specs, hc_trainer.get());
    Stopwatch hc_watch;
    const HillClimber climber;
    MultiTuneResult hc_result = climber.Run(**hc_problem);
    const double hc_seconds = hc_watch.ElapsedSeconds();

    std::printf("%-8.2f %6s %6s %12.2f %10.2f %11d %10d\n", epsilon,
                grid_result.satisfied ? "Yes" : "No",
                hc_result.satisfied ? "Yes" : "No", grid_seconds, hc_seconds,
                grid_result.models_trained, hc_result.models_trained);
  }
}

}  // namespace
}  // namespace bench
}  // namespace omnifair

int main() {
  omnifair::bench::Run();
  omnifair::bench::PrintRecoveryEvents();
  return 0;
}
