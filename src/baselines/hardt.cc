#include "baselines/hardt.h"

#include <algorithm>
#include <cmath>

#include "core/problem.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace omnifair {

HardtPostProcessing::HardtPostProcessing(Options options) : options_(options) {}

GroupThresholdClassifier::GroupThresholdClassifier(std::shared_ptr<Classifier> base,
                                                   int group1_feature,
                                                   int group2_feature,
                                                   double threshold1,
                                                   double threshold2)
    : base_(std::move(base)),
      group1_feature_(group1_feature),
      group2_feature_(group2_feature),
      threshold1_(threshold1),
      threshold2_(threshold2) {
  OF_CHECK(base_ != nullptr);
}

std::vector<double> GroupThresholdClassifier::PredictProba(const Matrix& X) const {
  std::vector<double> proba = base_->PredictProba(X);
  for (size_t i = 0; i < X.rows(); ++i) {
    double threshold = 0.5;
    if (group1_feature_ >= 0 && X(i, static_cast<size_t>(group1_feature_)) > 0.5) {
      threshold = threshold1_;
    } else if (group2_feature_ >= 0 &&
               X(i, static_cast<size_t>(group2_feature_)) > 0.5) {
      threshold = threshold2_;
    }
    // Re-center so thresholding at 0.5 reproduces score >= threshold, while
    // keeping the per-group score ordering (for AUC).
    proba[i] = std::clamp(0.5 + 0.5 * (proba[i] - threshold), 0.0, 1.0);
  }
  return proba;
}

Result<BaselineResult> HardtPostProcessing::Train(const Dataset& train,
                                                  const Dataset& val,
                                                  Trainer* trainer,
                                                  const FairnessSpec& spec) {
  if (trainer == nullptr) return Status::InvalidArgument("trainer is null");
  Stopwatch stopwatch;
  Result<std::unique_ptr<FairnessProblem>> problem =
      FairnessProblem::Create(train, val, {spec}, trainer);
  if (!problem.ok()) return problem.status();
  if ((*problem)->NumConstraints() != 1) {
    return Status::Unsupported(
        "post-processing thresholds are implemented for one pairwise constraint");
  }

  // One unconstrained base fit.
  std::shared_ptr<Classifier> base =
      (*problem)->FitWithLambdas({0.0}, /*weight_model=*/nullptr);

  // Locate the one-hot feature columns of the two groups so the wrapped
  // classifier can route rows to their thresholds at decision time.
  const ConstraintSpec& constraint = (*problem)->train_evaluator().constraint(0);
  int group1_feature = -1;
  int group2_feature = -1;
  const std::vector<std::string>& names = (*problem)->encoder().feature_names();
  for (size_t f = 0; f < names.size(); ++f) {
    const size_t eq = names[f].find('=');
    if (eq == std::string::npos) continue;
    const std::string category = names[f].substr(eq + 1);
    if (category == constraint.group1) group1_feature = static_cast<int>(f);
    if (category == constraint.group2) group2_feature = static_cast<int>(f);
  }
  if (group1_feature < 0 || group2_feature < 0) {
    return Status::Unsupported(
        "post-processing needs the sensitive attribute one-hot encoded in the "
        "features (drop_columns must not remove it)");
  }

  // Threshold grid on validation scores.
  const std::vector<double> val_scores =
      base->PredictProba((*problem)->val_features());
  std::vector<double> grid(static_cast<size_t>(options_.thresholds_per_group));
  for (size_t k = 0; k < grid.size(); ++k) {
    grid[k] = static_cast<double>(k + 1) / static_cast<double>(grid.size() + 1);
  }

  BaselineResult result;
  result.encoder = (*problem)->encoder();
  double best_accuracy = -1.0;
  const Matrix& Xval = (*problem)->val_features();
  std::vector<int> predictions(val_scores.size());
  auto group_of = [&](size_t i) {
    if (Xval(i, static_cast<size_t>(group1_feature)) > 0.5) return 1;
    if (Xval(i, static_cast<size_t>(group2_feature)) > 0.5) return 2;
    return 0;
  };

  double best_t1 = 0.5;
  double best_t2 = 0.5;
  for (double t1 : grid) {
    for (double t2 : grid) {
      for (size_t i = 0; i < val_scores.size(); ++i) {
        const int group = group_of(i);
        const double threshold = group == 1 ? t1 : (group == 2 ? t2 : 0.5);
        predictions[i] = val_scores[i] >= threshold ? 1 : 0;
      }
      const double fp = (*problem)->val_evaluator().FairnessPart(0, predictions);
      if (std::fabs(fp) > spec.epsilon) continue;
      const double accuracy = (*problem)->ValAccuracy(predictions);
      if (accuracy > best_accuracy) {
        best_accuracy = accuracy;
        best_t1 = t1;
        best_t2 = t2;
      }
    }
  }

  result.satisfied = best_accuracy >= 0.0;
  result.model = std::make_unique<GroupThresholdClassifier>(
      base, group1_feature, group2_feature, best_t1, best_t2);
  const std::vector<int> val_preds = (*problem)->PredictVal(*result.model);
  result.val_accuracy = (*problem)->ValAccuracy(val_preds);
  result.val_fairness_parts = (*problem)->val_evaluator().FairnessParts(val_preds);
  result.models_trained = (*problem)->models_trained();
  result.train_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace omnifair
