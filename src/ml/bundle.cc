#include "ml/bundle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "linalg/simd.h"
#include "linalg/vector_ops.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/snapshot_io.h"
#include "util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#define OMNIFAIR_BUNDLE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace omnifair {

namespace {

// Fixed header: magic, version, flags, section count, declared file size,
// reserved. Kept at 32 bytes so the first payload slot lands on a clean
// boundary after a short table.
constexpr uint64_t kHeaderBytes = 32;
constexpr uint64_t kTrailerBytes = 4;  // CRC-32
// Rows per chunk-parallel predict task; must match the model classes'
// kPredictChunkRows so the flat path is bit-identical at every thread count.
constexpr size_t kPredictChunkRows = 256;

uint64_t AlignUp(uint64_t offset) {
  return (offset + kBundleAlign - 1) / kBundleAlign * kBundleAlign;
}

Status NearByte(uint64_t offset, const std::string& what, bool invalid = false) {
  const std::string message =
      "bundle: " + what + " near byte " + std::to_string(offset);
  return invalid ? Status::InvalidArgument(message) : Status::DataLoss(message);
}

size_t DtypeElemBytes(BundleDtype dtype) {
  switch (dtype) {
    case BundleDtype::kBytes:
      return 1;
    case BundleDtype::kF64:
      return 8;
    case BundleDtype::kI32:
      return 4;
    case BundleDtype::kU64:
      return 8;
  }
  return 1;
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

struct PendingSection {
  std::string name;
  BundleDtype dtype;
  std::vector<uint8_t> payload;
};

void AddBytes(std::vector<PendingSection>* sections, const std::string& name,
              BundleDtype dtype, const void* data, size_t bytes) {
  PendingSection section;
  section.name = name;
  section.dtype = dtype;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  section.payload.assign(p, p + bytes);
  sections->push_back(std::move(section));
}

void AddF64(std::vector<PendingSection>* sections, const std::string& name,
            const std::vector<double>& values) {
  AddBytes(sections, name, BundleDtype::kF64, values.data(),
           values.size() * sizeof(double));
}

void AddI32(std::vector<PendingSection>* sections, const std::string& name,
            const std::vector<int32_t>& values) {
  AddBytes(sections, name, BundleDtype::kI32, values.data(),
           values.size() * sizeof(int32_t));
}

void AddU64(std::vector<PendingSection>* sections, const std::string& name,
            const std::vector<uint64_t>& values) {
  AddBytes(sections, name, BundleDtype::kU64, values.data(),
           values.size() * sizeof(uint64_t));
}

/// Struct-of-arrays node tables for one or more trees, concatenated.
/// Children are appended to the BFS queue left-then-right, so within a tree
/// the right child always sits at left_child + 1 and only `left` is stored.
struct FlatTreeArrays {
  std::vector<uint64_t> offsets{0};  // node-index range per tree
  std::vector<int32_t> feature;      // -1 marks a leaf
  std::vector<double> threshold;
  std::vector<int32_t> left;         // tree-local; -1 for leaves
  std::vector<double> value;         // leaf payload (probability / weight)
};

template <typename Node, typename ValueFn>
Status AppendBfsTree(const std::vector<Node>& nodes, ValueFn value_of,
                     FlatTreeArrays* out) {
  if (nodes.empty()) {
    return Status::InvalidArgument("cannot pack an empty tree into a bundle");
  }
  // Breadth-first visit order. BFS preserves every (feature, threshold)
  // comparison on the root-to-leaf path, so traversal reaches the same leaf
  // as the pointer-chasing layout — only the memory order changes.
  std::vector<int32_t> order;
  std::vector<int32_t> new_index(nodes.size(), -1);
  order.reserve(nodes.size());
  order.push_back(0);
  new_index[0] = 0;
  for (size_t q = 0; q < order.size(); ++q) {
    const Node& node = nodes[order[q]];
    if (node.is_leaf) continue;
    if (node.left < 0 || node.right < 0 ||
        static_cast<size_t>(node.left) >= nodes.size() ||
        static_cast<size_t>(node.right) >= nodes.size()) {
      return Status::InvalidArgument("malformed tree: child index out of range");
    }
    if (new_index[node.left] != -1 || new_index[node.right] != -1) {
      return Status::InvalidArgument("malformed tree: node reachable twice");
    }
    new_index[node.left] = static_cast<int32_t>(order.size());
    order.push_back(node.left);
    new_index[node.right] = static_cast<int32_t>(order.size());
    order.push_back(node.right);
  }
  for (size_t q = 0; q < order.size(); ++q) {
    const Node& node = nodes[order[q]];
    out->feature.push_back(node.is_leaf ? -1 : node.feature);
    out->threshold.push_back(node.is_leaf ? 0.0 : node.threshold);
    out->left.push_back(node.is_leaf ? -1 : new_index[node.left]);
    out->value.push_back(value_of(node));
  }
  out->offsets.push_back(static_cast<uint64_t>(out->feature.size()));
  return Status::Ok();
}

void AddTreeSections(std::vector<PendingSection>* sections,
                     const FlatTreeArrays& arrays, double base_score,
                     double learning_rate) {
  BinaryWriter meta;
  meta.U64(arrays.offsets.size() - 1);  // num_trees
  meta.F64(base_score);
  meta.F64(learning_rate);
  AddBytes(sections, "trees.meta", BundleDtype::kBytes, meta.buffer().data(),
           meta.size());
  AddU64(sections, "trees.offsets", arrays.offsets);
  AddI32(sections, "trees.feature", arrays.feature);
  AddF64(sections, "trees.threshold", arrays.threshold);
  AddI32(sections, "trees.left_child", arrays.left);
  AddF64(sections, "trees.leaf_value", arrays.value);
}

Status AppendModelSections(const Classifier& model,
                           std::vector<PendingSection>* sections) {
  if (const auto* lr = dynamic_cast<const LogisticRegressionModel*>(&model)) {
    BinaryWriter meta;
    meta.U64(lr->coefficients().size());
    meta.F64(lr->intercept());
    AddBytes(sections, "lr.meta", BundleDtype::kBytes, meta.buffer().data(),
             meta.size());
    AddF64(sections, "lr.coef", lr->coefficients());
    return Status::Ok();
  }
  if (const auto* nb = dynamic_cast<const NaiveBayesModel*>(&model)) {
    BinaryWriter meta;
    meta.U64(nb->mean0().size());
    meta.F64(nb->log_prior_ratio());
    AddBytes(sections, "nb.meta", BundleDtype::kBytes, meta.buffer().data(),
             meta.size());
    AddF64(sections, "nb.mean0", nb->mean0());
    AddF64(sections, "nb.mean1", nb->mean1());
    AddF64(sections, "nb.var0", nb->var0());
    AddF64(sections, "nb.var1", nb->var1());
    return Status::Ok();
  }
  if (const auto* mlp = dynamic_cast<const MlpModel*>(&model)) {
    if (mlp->W1().is_float32()) {
      return Status::Unsupported("cannot pack an mlp with float32 weights");
    }
    BinaryWriter meta;
    meta.U64(mlp->W1().rows());
    meta.U64(mlp->W1().cols());
    meta.F64(mlp->b2());
    AddBytes(sections, "mlp.meta", BundleDtype::kBytes, meta.buffer().data(),
             meta.size());
    AddF64(sections, "mlp.w1", mlp->W1().data());
    AddF64(sections, "mlp.b1", mlp->b1());
    AddF64(sections, "mlp.w2", mlp->w2());
    return Status::Ok();
  }
  if (const auto* dt = dynamic_cast<const DecisionTreeModel*>(&model)) {
    FlatTreeArrays arrays;
    Status status = AppendBfsTree(
        dt->nodes(),
        [](const DecisionTreeModel::Node& n) { return n.probability; }, &arrays);
    if (!status.ok()) return status;
    AddTreeSections(sections, arrays, 0.0, 1.0);
    return Status::Ok();
  }
  if (const auto* rf = dynamic_cast<const RandomForestModel*>(&model)) {
    FlatTreeArrays arrays;
    for (const auto& tree : rf->trees()) {
      const auto* dt_tree = dynamic_cast<const DecisionTreeModel*>(tree.get());
      if (dt_tree == nullptr) {
        return Status::InvalidArgument(
            "random forest member is not a decision tree");
      }
      Status status = AppendBfsTree(
          dt_tree->nodes(),
          [](const DecisionTreeModel::Node& n) { return n.probability; },
          &arrays);
      if (!status.ok()) return status;
    }
    AddTreeSections(sections, arrays, 0.0, 1.0);
    return Status::Ok();
  }
  if (const auto* gbdt = dynamic_cast<const GbdtModel*>(&model)) {
    FlatTreeArrays arrays;
    for (const auto& tree : gbdt->trees()) {
      Status status = AppendBfsTree(
          tree, [](const GbdtTreeNode& n) { return n.value; }, &arrays);
      if (!status.ok()) return status;
    }
    AddTreeSections(sections, arrays, gbdt->base_score(),
                    gbdt->learning_rate());
    return Status::Ok();
  }
  return Status::Unsupported("no bundle codec for model family '" +
                             model.Name() + "'");
}

}  // namespace

Status WriteBundle(const Classifier& model, const FeatureEncoder& encoder,
                   const BundleMeta& meta, const std::string& path) {
  std::vector<PendingSection> sections;

  BundleMeta resolved = meta;
  if (resolved.family.empty()) resolved.family = model.Name();
  if (resolved.num_features == 0) resolved.num_features = encoder.NumFeatures();

  BinaryWriter meta_writer;
  meta_writer.String(resolved.family);
  meta_writer.U8(resolved.satisfied ? 1 : 0);
  meta_writer.F64(resolved.val_accuracy);
  meta_writer.F64Vector(resolved.lambdas);
  meta_writer.String(resolved.metric);
  meta_writer.String(resolved.sensitive_attribute);
  meta_writer.F64(resolved.epsilon);
  meta_writer.U64(resolved.num_features);
  AddBytes(&sections, "meta", BundleDtype::kBytes, meta_writer.buffer().data(),
           meta_writer.size());

  std::ostringstream encoder_text;
  encoder.SerializeTo(encoder_text);
  const std::string encoder_blob = encoder_text.str();
  AddBytes(&sections, "encoder", BundleDtype::kBytes, encoder_blob.data(),
           encoder_blob.size());

  Status model_status = AppendModelSections(model, &sections);
  if (!model_status.ok()) return model_status;

  // Layout: header, section table, 64-byte-aligned payloads, CRC trailer.
  uint64_t table_bytes = 0;
  for (const PendingSection& section : sections) {
    table_bytes += 4 + section.name.size() + 1 + 8 + 8;  // name, dtype, off, size
  }
  uint64_t cursor = AlignUp(kHeaderBytes + table_bytes);
  std::vector<uint64_t> offsets;
  offsets.reserve(sections.size());
  for (const PendingSection& section : sections) {
    offsets.push_back(cursor);
    cursor = AlignUp(cursor + section.payload.size());
  }
  // The trailer follows the last payload without padding.
  const uint64_t last_payload_end =
      sections.empty() ? kHeaderBytes + table_bytes
                       : offsets.back() + sections.back().payload.size();
  const uint64_t file_size = last_payload_end + kTrailerBytes;

  BinaryWriter out;
  out.U32(kBundleMagic);
  out.U32(kBundleVersion);
  out.U32(0);  // flags
  out.U32(static_cast<uint32_t>(sections.size()));
  out.U64(file_size);
  out.U64(0);  // reserved
  OF_CHECK_EQ(out.size(), kHeaderBytes);
  for (size_t i = 0; i < sections.size(); ++i) {
    out.String(sections[i].name);
    out.U8(static_cast<uint8_t>(sections[i].dtype));
    out.U64(offsets[i]);
    out.U64(sections[i].payload.size());
  }
  for (size_t i = 0; i < sections.size(); ++i) {
    while (out.size() < offsets[i]) out.U8(0);
    out.RawBytes(sections[i].payload.data(), sections[i].payload.size());
  }
  OF_CHECK_EQ(out.size(), last_payload_end);
  const uint32_t crc = Crc32(out.buffer().data(), out.size());
  out.U32(crc);

  // Crash-safe publish via the snapshot layer's temp file + fsync + atomic
  // rename, so a rename surviving a power loss implies the data did too.
  return WriteFileAtomic(path, out.buffer().data(), out.size());
}

// ---------------------------------------------------------------------------
// Loading + validation
// ---------------------------------------------------------------------------

namespace {

struct ParsedHeader {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint32_t section_count = 0;
  uint64_t declared_size = 0;
};

/// Parses + bounds-checks the fixed header and the section table. `data`
/// spans the whole file image.
Status ParseHeaderAndTable(const uint8_t* data, uint64_t size,
                           ParsedHeader* header,
                           std::vector<BundleSectionInfo>* sections) {
  if (size < kHeaderBytes + kTrailerBytes) {
    return NearByte(size, "truncated: " + std::to_string(size) +
                              " bytes is smaller than a bundle header");
  }
  BinaryReader reader(data, size);
  uint32_t magic = 0;
  uint64_t reserved = 0;
  if (!reader.U32(&magic) || magic != kBundleMagic) {
    return NearByte(0, "not an omnifair bundle (bad magic)", /*invalid=*/true);
  }
  if (!reader.U32(&header->version) || header->version == 0 ||
      header->version > kBundleVersion) {
    return NearByte(4,
                    "unsupported bundle version " +
                        std::to_string(header->version) + " (max " +
                        std::to_string(kBundleVersion) + ")",
                    /*invalid=*/true);
  }
  if (!reader.U32(&header->flags) || !reader.U32(&header->section_count) ||
      !reader.U64(&header->declared_size) || !reader.U64(&reserved)) {
    return reader.status();
  }
  if (header->declared_size != size) {
    return NearByte(16, "truncated: header declares " +
                            std::to_string(header->declared_size) +
                            " bytes but the file has " + std::to_string(size));
  }
  if (header->section_count > 4096) {
    return NearByte(12, "implausible section count " +
                            std::to_string(header->section_count),
                    /*invalid=*/true);
  }
  sections->clear();
  sections->reserve(header->section_count);
  for (uint32_t i = 0; i < header->section_count; ++i) {
    BundleSectionInfo info;
    uint8_t dtype = 0;
    if (!reader.String(&info.name) || !reader.U8(&dtype) ||
        !reader.U64(&info.offset) || !reader.U64(&info.size)) {
      return reader.status();
    }
    if (dtype > static_cast<uint8_t>(BundleDtype::kU64)) {
      return NearByte(reader.offset(),
                      "section '" + info.name + "' has unknown dtype " +
                          std::to_string(dtype),
                      /*invalid=*/true);
    }
    info.dtype = static_cast<BundleDtype>(dtype);
    const uint64_t payload_end = size - kTrailerBytes;
    if (info.offset < kHeaderBytes || info.offset % kBundleAlign != 0 ||
        info.offset > payload_end || info.size > payload_end - info.offset) {
      return NearByte(reader.offset(), "section '" + info.name +
                                           "' points outside the file (offset " +
                                           std::to_string(info.offset) +
                                           ", size " + std::to_string(info.size) +
                                           ")");
    }
    if (info.size % DtypeElemBytes(info.dtype) != 0) {
      return NearByte(info.offset, "section '" + info.name +
                                       "' byte size is not a multiple of its "
                                       "element size");
    }
    sections->push_back(std::move(info));
  }
  return Status::Ok();
}

uint32_t ReadTrailerCrc(const uint8_t* data, uint64_t size) {
  uint32_t stored = 0;
  std::memcpy(&stored, data + size - kTrailerBytes, sizeof(stored));
  return stored;
}

}  // namespace

/// Friend of ModelBundle: resolves typed array views into the validated
/// image and cross-checks every shape invariant the flat models rely on.
struct BundleParser {
  ModelBundle* bundle;

  const BundleSectionInfo* Find(const std::string& name) const {
    for (const BundleSectionInfo& section : bundle->sections_) {
      if (section.name == name) return &section;
    }
    return nullptr;
  }

  template <typename T>
  Result<const T*> Array(const std::string& name, BundleDtype dtype,
                         uint64_t expect_count) const {
    const BundleSectionInfo* section = Find(name);
    if (section == nullptr) {
      return Status::DataLoss("bundle: missing section '" + name + "'");
    }
    if (section->dtype != dtype) {
      return NearByte(section->offset, "section '" + name + "' has wrong dtype");
    }
    // Divide rather than multiply: `expect_count * sizeof(T)` can wrap for
    // attacker-chosen counts, while section->size is already bounded by the
    // file size.
    if (section->size / sizeof(T) != expect_count ||
        section->size % sizeof(T) != 0) {
      return NearByte(section->offset,
                      "section '" + name + "' holds " +
                          std::to_string(section->size / sizeof(T)) +
                          " elements, expected " + std::to_string(expect_count));
    }
    const uint8_t* p = bundle->base() + section->offset;
    if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0) {
      return NearByte(section->offset,
                      "section '" + name + "' payload is misaligned");
    }
    return reinterpret_cast<const T*>(p);
  }

  Result<BinaryReader> MetaReader(const std::string& name) const {
    const BundleSectionInfo* section = Find(name);
    if (section == nullptr) {
      return Status::DataLoss("bundle: missing section '" + name + "'");
    }
    return BinaryReader(bundle->base() + section->offset, section->size);
  }

  Status ParseMeta() {
    Result<BinaryReader> reader = MetaReader("meta");
    if (!reader.ok()) return reader.status();
    BundleMeta& meta = bundle->meta_;
    uint8_t satisfied = 0;
    if (!reader->String(&meta.family) || !reader->U8(&satisfied) ||
        !reader->F64(&meta.val_accuracy) ||
        !reader->F64Vector(&meta.lambdas) || !reader->String(&meta.metric) ||
        !reader->String(&meta.sensitive_attribute) ||
        !reader->F64(&meta.epsilon) || !reader->U64(&meta.num_features)) {
      return reader->status();
    }
    meta.satisfied = satisfied != 0;
    return Status::Ok();
  }

  Status ParseEncoder() {
    const BundleSectionInfo* section = Find("encoder");
    if (section == nullptr) {
      return Status::DataLoss("bundle: missing section 'encoder'");
    }
    const char* text = reinterpret_cast<const char*>(bundle->base()) +
                       section->offset;
    std::istringstream stream(std::string(text, section->size));
    Result<FeatureEncoder> encoder = FeatureEncoder::Deserialize(stream);
    if (!encoder.ok()) return encoder.status();
    bundle->encoder_ = std::move(*encoder);
    if (bundle->encoder_.NumFeatures() != bundle->meta_.num_features) {
      return NearByte(section->offset,
                      "encoder emits " +
                          std::to_string(bundle->encoder_.NumFeatures()) +
                          " features but meta declares " +
                          std::to_string(bundle->meta_.num_features));
    }
    return Status::Ok();
  }

  Status ParseTrees() {
    Result<BinaryReader> meta_reader = MetaReader("trees.meta");
    if (!meta_reader.ok()) return meta_reader.status();
    ModelBundle::FlatTrees& trees = bundle->trees_;
    if (!meta_reader->U64(&trees.num_trees) ||
        !meta_reader->F64(&trees.base_score) ||
        !meta_reader->F64(&trees.learning_rate)) {
      return meta_reader->status();
    }
    if (trees.num_trees == 0 || trees.num_trees > (1u << 24)) {
      return Status::DataLoss("bundle: implausible tree count " +
                              std::to_string(trees.num_trees));
    }
    Result<const uint64_t*> offsets =
        Array<uint64_t>("trees.offsets", BundleDtype::kU64, trees.num_trees + 1);
    if (!offsets.ok()) return offsets.status();
    trees.tree_offsets = *offsets;
    if (trees.tree_offsets[0] != 0) {
      return Status::DataLoss("bundle: tree offsets must start at 0");
    }
    for (uint64_t t = 0; t < trees.num_trees; ++t) {
      if (trees.tree_offsets[t + 1] <= trees.tree_offsets[t]) {
        return Status::DataLoss("bundle: tree " + std::to_string(t) +
                                " is empty or offsets are not ascending");
      }
    }
    const uint64_t total_nodes = trees.tree_offsets[trees.num_trees];
    // Child indices are int32, so every node index (and the casts in the
    // invariant loop below) must fit in int32. This also bounds the loop for
    // crafted offset tables before any node array is touched.
    if (total_nodes > static_cast<uint64_t>(
                          std::numeric_limits<int32_t>::max())) {
      return Status::DataLoss("bundle: implausible total node count " +
                              std::to_string(total_nodes));
    }
    Result<const int32_t*> feature =
        Array<int32_t>("trees.feature", BundleDtype::kI32, total_nodes);
    Result<const double*> threshold =
        Array<double>("trees.threshold", BundleDtype::kF64, total_nodes);
    Result<const int32_t*> left =
        Array<int32_t>("trees.left_child", BundleDtype::kI32, total_nodes);
    Result<const double*> value =
        Array<double>("trees.leaf_value", BundleDtype::kF64, total_nodes);
    if (!feature.ok()) return feature.status();
    if (!threshold.ok()) return threshold.status();
    if (!left.ok()) return left.status();
    if (!value.ok()) return value.status();
    trees.feature = *feature;
    trees.threshold = *threshold;
    trees.left_child = *left;
    trees.leaf_value = *value;

    // Node-table invariants that make traversal safe without per-row checks:
    // feature indices inside the encoded width, children strictly forward
    // (BFS order ⇒ termination) and in range, leaves marked consistently.
    const int64_t dims = static_cast<int64_t>(bundle->meta_.num_features);
    for (uint64_t t = 0; t < trees.num_trees; ++t) {
      const uint64_t begin = trees.tree_offsets[t];
      const uint64_t count = trees.tree_offsets[t + 1] - begin;
      for (uint64_t i = 0; i < count; ++i) {
        const int32_t f = trees.feature[begin + i];
        const int32_t l = trees.left_child[begin + i];
        if (f < 0) {
          if (l != -1) {
            return Status::DataLoss("bundle: leaf node with a child in tree " +
                                    std::to_string(t));
          }
          continue;
        }
        if (f >= dims) {
          return Status::DataLoss(
              "bundle: tree " + std::to_string(t) + " splits on feature " +
              std::to_string(f) + " but the encoder emits " +
              std::to_string(dims) + " features");
        }
        if (l <= static_cast<int32_t>(i) ||
            static_cast<uint64_t>(l) + 1 >= count) {
          return Status::DataLoss("bundle: tree " + std::to_string(t) +
                                  " child index " + std::to_string(l) +
                                  " breaks the breadth-first layout");
        }
      }
    }
    return Status::Ok();
  }

  Status ParseFamily() {
    const std::string& family = bundle->meta_.family;
    const uint64_t dims = bundle->meta_.num_features;
    if (family == "logistic_regression") {
      bundle->family_ = ModelBundle::Family::kLr;
      Result<BinaryReader> meta = MetaReader("lr.meta");
      if (!meta.ok()) return meta.status();
      if (!meta->U64(&bundle->lr_.dims) || !meta->F64(&bundle->lr_.intercept)) {
        return meta->status();
      }
      if (bundle->lr_.dims != dims) {
        return Status::DataLoss("bundle: lr weight width mismatch");
      }
      Result<const double*> coef =
          Array<double>("lr.coef", BundleDtype::kF64, bundle->lr_.dims);
      if (!coef.ok()) return coef.status();
      bundle->lr_.coef = *coef;
      return Status::Ok();
    }
    if (family == "naive_bayes") {
      bundle->family_ = ModelBundle::Family::kNb;
      Result<BinaryReader> meta = MetaReader("nb.meta");
      if (!meta.ok()) return meta.status();
      if (!meta->U64(&bundle->nb_.dims) ||
          !meta->F64(&bundle->nb_.log_prior_ratio)) {
        return meta->status();
      }
      if (bundle->nb_.dims != dims) {
        return Status::DataLoss("bundle: nb statistics width mismatch");
      }
      const std::pair<const char*, const double**> nb_arrays[] = {
          {"nb.mean0", &bundle->nb_.mean0},
          {"nb.mean1", &bundle->nb_.mean1},
          {"nb.var0", &bundle->nb_.var0},
          {"nb.var1", &bundle->nb_.var1}};
      for (const auto& [name, slot] : nb_arrays) {
        Result<const double*> array =
            Array<double>(name, BundleDtype::kF64, bundle->nb_.dims);
        if (!array.ok()) return array.status();
        *slot = *array;
      }
      return Status::Ok();
    }
    if (family == "mlp") {
      bundle->family_ = ModelBundle::Family::kMlp;
      Result<BinaryReader> meta = MetaReader("mlp.meta");
      if (!meta.ok()) return meta.status();
      if (!meta->U64(&bundle->mlp_.hidden) || !meta->U64(&bundle->mlp_.dims) ||
          !meta->F64(&bundle->mlp_.b2)) {
        return meta->status();
      }
      if (bundle->mlp_.dims != dims || bundle->mlp_.hidden == 0 ||
          bundle->mlp_.hidden > (1u << 20)) {
        return Status::DataLoss("bundle: mlp shape mismatch");
      }
      Result<const double*> w1 = Array<double>(
          "mlp.w1", BundleDtype::kF64, bundle->mlp_.hidden * bundle->mlp_.dims);
      Result<const double*> b1 =
          Array<double>("mlp.b1", BundleDtype::kF64, bundle->mlp_.hidden);
      Result<const double*> w2 =
          Array<double>("mlp.w2", BundleDtype::kF64, bundle->mlp_.hidden);
      if (!w1.ok()) return w1.status();
      if (!b1.ok()) return b1.status();
      if (!w2.ok()) return w2.status();
      bundle->mlp_.w1 = *w1;
      bundle->mlp_.b1 = *b1;
      bundle->mlp_.w2 = *w2;
      return Status::Ok();
    }
    if (family == "decision_tree") {
      bundle->family_ = ModelBundle::Family::kDt;
      Status status = ParseTrees();
      if (!status.ok()) return status;
      if (bundle->trees_.num_trees != 1) {
        return Status::DataLoss("bundle: decision_tree must hold one tree");
      }
      return Status::Ok();
    }
    if (family == "random_forest") {
      bundle->family_ = ModelBundle::Family::kRf;
      return ParseTrees();
    }
    if (family == "gbdt") {
      bundle->family_ = ModelBundle::Family::kGbdt;
      return ParseTrees();
    }
    return Status::InvalidArgument("bundle: unknown model family '" + family +
                                   "'");
  }

  Status Parse() {
    const uint8_t* data = bundle->base();
    const uint64_t size = bundle->size_;
    ParsedHeader header;
    Status status = ParseHeaderAndTable(data, size, &header, &bundle->sections_);
    if (!status.ok()) return status;
    const uint32_t computed = Crc32(data, size - kTrailerBytes);
    const uint32_t stored = ReadTrailerCrc(data, size);
    if (computed != stored) {
      return NearByte(size - kTrailerBytes, "CRC mismatch (bit flip or torn write)");
    }
    status = ParseMeta();
    if (!status.ok()) return status;
    status = ParseEncoder();
    if (!status.ok()) return status;
    return ParseFamily();
  }
};

const uint8_t* ModelBundle::base() const {
  return mapped_ ? static_cast<const uint8_t*>(map_addr_) : owned_.data();
}

ModelBundle::~ModelBundle() {
#if OMNIFAIR_BUNDLE_HAVE_MMAP
  if (mapped_ && map_addr_ != nullptr) {
    munmap(map_addr_, static_cast<size_t>(size_));
  }
#endif
}

Result<std::shared_ptr<const ModelBundle>> ModelBundle::Open(
    const std::string& path) {
  return Open(path, OpenOptions());
}

Result<std::shared_ptr<const ModelBundle>> ModelBundle::Open(
    const std::string& path, const OpenOptions& options) {
  std::shared_ptr<ModelBundle> bundle(new ModelBundle());
  // The corrupt-read fault site needs a writable image to flip a byte in, so
  // an armed injector forces the owned-buffer path.
  const bool corrupt = FaultInjector::ShouldFail(fault_sites::kIoCorruptRead);
#if OMNIFAIR_BUNDLE_HAVE_MMAP
  if (options.allow_mmap && !corrupt) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return IoError(path, "open", errno);
    struct stat st;
    if (fstat(fd, &st) == 0 && st.st_size > 0) {
      void* addr = mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
      if (addr != MAP_FAILED) {
        bundle->mapped_ = true;
        bundle->map_addr_ = addr;
        bundle->size_ = static_cast<uint64_t>(st.st_size);
      }
    }
    ::close(fd);
  }
#else
  (void)options;
#endif
  if (!bundle->mapped_) {
    std::ifstream file(path, std::ios::binary);
    if (!file) return IoError(path, "open");
    file.seekg(0, std::ios::end);
    const std::streamoff length = file.tellg();
    file.seekg(0, std::ios::beg);
    bundle->owned_.resize(length > 0 ? static_cast<size_t>(length) : 0);
    if (!bundle->owned_.empty()) {
      file.read(reinterpret_cast<char*>(bundle->owned_.data()),
                static_cast<std::streamsize>(bundle->owned_.size()));
      if (!file) return IoError(path, "read");
    }
    bundle->size_ = bundle->owned_.size();
    if (corrupt && !bundle->owned_.empty()) {
      bundle->owned_[bundle->owned_.size() * 2 / 3] ^= 0x2a;
    }
  }
  BundleParser parser{bundle.get()};
  Status status = parser.Parse();
  if (!status.ok()) return status;
  return std::static_pointer_cast<const ModelBundle>(bundle);
}

// ---------------------------------------------------------------------------
// Flat models: each replicates the corresponding model's predict arithmetic
// (same kernels, same chunking, same accumulation order) over the aliased
// arrays, so results are bit-identical at every thread count. Defined at
// namespace scope (not anonymous) so ModelBundle's friend declarations
// match; they stay cc-private via the header's absence of declarations.
// ---------------------------------------------------------------------------

namespace {

/// Root-to-leaf walk over one tree's slice of the node tables. The right
/// child is left_child + 1 by BFS construction; the comparison matches the
/// pointer layouts (`row[feature] <= threshold`, float rows widened once).
template <typename T>
double FlatLeafValue(const int32_t* feature, const double* threshold,
                     const int32_t* left, const double* value, const T* row) {
  int32_t i = 0;
  while (feature[i] >= 0) {
    i = static_cast<double>(row[feature[i]]) <= threshold[i] ? left[i]
                                                             : left[i] + 1;
  }
  return value[i];
}

}  // namespace

class FlatTreeBase : public Classifier {
 public:
  explicit FlatTreeBase(std::shared_ptr<const ModelBundle> bundle)
      : bundle_(std::move(bundle)), trees_(bundle_->trees_) {}

 protected:
  template <typename T>
  double TreeLeaf(uint64_t tree, const T* row) const {
    const uint64_t base = trees_.tree_offsets[tree];
    return FlatLeafValue(trees_.feature + base, trees_.threshold + base,
                         trees_.left_child + base, trees_.leaf_value + base,
                         row);
  }

  std::shared_ptr<const ModelBundle> bundle_;
  const ModelBundle::FlatTrees& trees_;
};

class FlatTreeModel final : public FlatTreeBase {
 public:
  using FlatTreeBase::FlatTreeBase;

  std::vector<double> PredictProba(const Matrix& X) const override {
    std::vector<double> proba(X.rows());
    if (X.is_float32()) {
      for (size_t i = 0; i < X.rows(); ++i) proba[i] = TreeLeaf(0, X.RowF(i));
    } else {
      for (size_t i = 0; i < X.rows(); ++i) proba[i] = TreeLeaf(0, X.Row(i));
    }
    return proba;
  }

  void AccumulateProba(const Matrix& X, size_t row_begin, size_t row_end,
                       std::vector<double>& proba) const override {
    if (X.is_float32()) {
      for (size_t i = row_begin; i < row_end; ++i)
        proba[i] += TreeLeaf(0, X.RowF(i));
    } else {
      for (size_t i = row_begin; i < row_end; ++i)
        proba[i] += TreeLeaf(0, X.Row(i));
    }
  }

  std::string Name() const override { return "decision_tree"; }
};

class FlatForestModel final : public FlatTreeBase {
 public:
  FlatForestModel(std::shared_ptr<const ModelBundle> bundle, int num_threads)
      : FlatTreeBase(std::move(bundle)),
        num_threads_(std::max(1, num_threads)) {}

  std::vector<double> PredictProba(const Matrix& X) const override {
    const size_t n = X.rows();
    const bool f32 = X.is_float32();
    std::vector<double> proba(n, 0.0);
    // Tree-index-order accumulation per row, chunk-parallel over disjoint
    // rows — the same schedule as RandomForestModel::PredictProba, so the
    // result is bit-identical for any thread count.
    auto accumulate_rows = [&](size_t begin, size_t end) {
      for (uint64_t t = 0; t < trees_.num_trees; ++t) {
        if (f32) {
          for (size_t i = begin; i < end; ++i) proba[i] += TreeLeaf(t, X.RowF(i));
        } else {
          for (size_t i = begin; i < end; ++i) proba[i] += TreeLeaf(t, X.Row(i));
        }
      }
    };
    if (num_threads_ <= 1 || n < 2 * kPredictChunkRows) {
      accumulate_rows(0, n);
    } else {
      const size_t chunks = (n + kPredictChunkRows - 1) / kPredictChunkRows;
      ThreadPool::Global().ParallelFor(
          chunks,
          [&](size_t c) {
            const size_t begin = c * kPredictChunkRows;
            accumulate_rows(begin, std::min(n, begin + kPredictChunkRows));
          },
          num_threads_);
    }
    const double inv = 1.0 / static_cast<double>(trees_.num_trees);
    for (double& p : proba) p *= inv;
    return proba;
  }

  std::string Name() const override { return "random_forest"; }

 private:
  int num_threads_;
};

class FlatGbdtModel final : public FlatTreeBase {
 public:
  FlatGbdtModel(std::shared_ptr<const ModelBundle> bundle, int num_threads)
      : FlatTreeBase(std::move(bundle)),
        num_threads_(std::max(1, num_threads)) {}

  std::vector<double> PredictProba(const Matrix& X) const override {
    std::vector<double> proba = PredictRaw(X);
    SigmoidInPlace(&proba);
    return proba;
  }

  void AccumulateProba(const Matrix& X, size_t row_begin, size_t row_end,
                       std::vector<double>& proba) const override {
    // Blocked sigmoid into a stack scratch, mirroring GbdtModel.
    const bool f32 = X.is_float32();
    double scratch[kPredictChunkRows];
    for (size_t start = row_begin; start < row_end;
         start += kPredictChunkRows) {
      const size_t len = std::min(row_end - start, kPredictChunkRows);
      if (f32) {
        for (size_t j = 0; j < len; ++j) scratch[j] = RawRow(X.RowF(start + j));
      } else {
        for (size_t j = 0; j < len; ++j) scratch[j] = RawRow(X.Row(start + j));
      }
      SigmoidInPlace(scratch, len);
      for (size_t j = 0; j < len; ++j) proba[start + j] += scratch[j];
    }
  }

  std::string Name() const override { return "gbdt"; }

 private:
  template <typename T>
  double RawRow(const T* row) const {
    double raw = trees_.base_score;
    for (uint64_t t = 0; t < trees_.num_trees; ++t) {
      raw += trees_.learning_rate * TreeLeaf(t, row);
    }
    return raw;
  }

  std::vector<double> PredictRaw(const Matrix& X) const {
    const size_t n = X.rows();
    const bool f32 = X.is_float32();
    std::vector<double> raw(n);
    auto score_rows = [&](size_t begin, size_t end) {
      if (f32) {
        for (size_t i = begin; i < end; ++i) raw[i] = RawRow(X.RowF(i));
      } else {
        for (size_t i = begin; i < end; ++i) raw[i] = RawRow(X.Row(i));
      }
    };
    if (num_threads_ <= 1 || n < 2 * kPredictChunkRows) {
      score_rows(0, n);
    } else {
      const size_t chunks = (n + kPredictChunkRows - 1) / kPredictChunkRows;
      ThreadPool::Global().ParallelFor(
          chunks,
          [&](size_t c) {
            const size_t begin = c * kPredictChunkRows;
            score_rows(begin, std::min(n, begin + kPredictChunkRows));
          },
          num_threads_);
    }
    return raw;
  }

  int num_threads_;
};

class FlatLrModel final : public Classifier {
 public:
  explicit FlatLrModel(std::shared_ptr<const ModelBundle> bundle)
      : bundle_(std::move(bundle)), lr_(bundle_->lr_) {}

  std::vector<double> PredictProba(const Matrix& X) const override {
    OF_CHECK_EQ(X.cols(), static_cast<size_t>(lr_.dims));
    std::vector<double> proba(X.rows());
    X.MatVecInto(lr_.coef, proba.data());
    for (double& p : proba) p += lr_.intercept;
    SigmoidInPlace(&proba);
    return proba;
  }

  std::string Name() const override { return "logistic_regression"; }

 private:
  std::shared_ptr<const ModelBundle> bundle_;
  const ModelBundle::FlatLinear& lr_;
};

class FlatMlpModel final : public Classifier {
 public:
  explicit FlatMlpModel(std::shared_ptr<const ModelBundle> bundle)
      : bundle_(std::move(bundle)), mlp_(bundle_->mlp_) {}

  std::vector<double> PredictProba(const Matrix& X) const override {
    const size_t d = static_cast<size_t>(mlp_.dims);
    const size_t h = static_cast<size_t>(mlp_.hidden);
    OF_CHECK_EQ(X.cols(), d);
    const size_t n = X.rows();
    const bool f32 = X.is_float32();
    std::vector<double> proba(n);
    std::vector<double> hidden(h);
    const simd::Kernels& kernels = simd::Active();
    // Row-blocked predict with the same per-row dot kernels Matrix::
    // MatVecInto dispatches to (note dot_f32 takes the float operand first).
    constexpr size_t kBlockRows = 256;
    for (size_t start = 0; start < n; start += kBlockRows) {
      const size_t end = std::min(n, start + kBlockRows);
      for (size_t i = start; i < end; ++i) {
        if (f32) {
          const float* row = X.RowF(i);
          for (size_t j = 0; j < h; ++j) {
            hidden[j] = kernels.dot_f32(row, mlp_.w1 + j * d, d);
          }
        } else {
          const double* row = X.Row(i);
          for (size_t j = 0; j < h; ++j) {
            hidden[j] = kernels.dot(mlp_.w1 + j * d, row, d);
          }
        }
        for (size_t j = 0; j < h; ++j) {
          const double z = hidden[j] + mlp_.b1[j];
          hidden[j] = z > 0.0 ? z : 0.0;  // ReLU
        }
        proba[i] = mlp_.b2 + kernels.dot(mlp_.w2, hidden.data(), h);
      }
      kernels.sigmoid_inplace(proba.data() + start, end - start);
    }
    return proba;
  }

  std::string Name() const override { return "mlp"; }

 private:
  std::shared_ptr<const ModelBundle> bundle_;
  const ModelBundle::FlatMlp& mlp_;
};

class FlatNbModel final : public Classifier {
 public:
  explicit FlatNbModel(std::shared_ptr<const ModelBundle> bundle)
      : bundle_(std::move(bundle)), nb_(bundle_->nb_) {}

  std::vector<double> PredictProba(const Matrix& X) const override {
    const size_t d = static_cast<size_t>(nb_.dims);
    OF_CHECK_EQ(X.cols(), d);
    std::vector<double> proba(X.rows());
    for (size_t i = 0; i < X.rows(); ++i) {
      double log_odds = nb_.log_prior_ratio;
      for (size_t c = 0; c < d; ++c) {
        const double x = X(i, c);
        const double d1 = x - nb_.mean1[c];
        const double d0 = x - nb_.mean0[c];
        log_odds += -0.5 * std::log(nb_.var1[c]) - 0.5 * d1 * d1 / nb_.var1[c];
        log_odds -= -0.5 * std::log(nb_.var0[c]) - 0.5 * d0 * d0 / nb_.var0[c];
      }
      proba[i] = Sigmoid(log_odds);
    }
    return proba;
  }

  std::string Name() const override { return "naive_bayes"; }

 private:
  std::shared_ptr<const ModelBundle> bundle_;
  const ModelBundle::FlatNb& nb_;
};

std::unique_ptr<Classifier> ModelBundle::MakeModel(int num_threads) const {
  std::shared_ptr<const ModelBundle> self = shared_from_this();
  switch (family_) {
    case Family::kLr:
      return std::make_unique<FlatLrModel>(std::move(self));
    case Family::kNb:
      return std::make_unique<FlatNbModel>(std::move(self));
    case Family::kDt:
      return std::make_unique<FlatTreeModel>(std::move(self));
    case Family::kRf:
      return std::make_unique<FlatForestModel>(std::move(self), num_threads);
    case Family::kGbdt:
      return std::make_unique<FlatGbdtModel>(std::move(self), num_threads);
    case Family::kMlp:
      return std::make_unique<FlatMlpModel>(std::move(self));
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

Result<BundleInspection> InspectBundle(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return IoError(path, "open");
  file.seekg(0, std::ios::end);
  const std::streamoff length = file.tellg();
  file.seekg(0, std::ios::beg);
  std::vector<uint8_t> data(length > 0 ? static_cast<size_t>(length) : 0);
  if (!data.empty()) {
    file.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!file) return IoError(path, "read");
  }
  ParsedHeader header;
  BundleInspection inspection;
  Status status =
      ParseHeaderAndTable(data.data(), data.size(), &header, &inspection.sections);
  if (!status.ok()) return status;
  inspection.version = header.version;
  inspection.flags = header.flags;
  inspection.file_size = data.size();
  inspection.crc_computed = Crc32(data.data(), data.size() - kTrailerBytes);
  inspection.crc_stored = ReadTrailerCrc(data.data(), data.size());
  inspection.crc_ok = inspection.crc_computed == inspection.crc_stored;
  return inspection;
}

std::string BundleInspection::ToString() const {
  std::ostringstream out;
  out << "bundle version : " << version << "\n";
  out << "flags          : " << flags << "\n";
  out << "file size      : " << file_size << " bytes\n";
  char crc_line[96];
  std::snprintf(crc_line, sizeof(crc_line),
                "crc32          : 0x%08x (%s)\n", crc_stored,
                crc_ok ? "ok" : "MISMATCH");
  out << crc_line;
  if (!crc_ok) {
    std::snprintf(crc_line, sizeof(crc_line), "crc32 computed : 0x%08x\n",
                  crc_computed);
    out << crc_line;
  }
  out << "sections (" << sections.size() << "):\n";
  out << "  name                 dtype   offset       bytes\n";
  static const char* kDtypeNames[] = {"bytes", "f64", "i32", "u64"};
  for (const BundleSectionInfo& section : sections) {
    char row[160];
    std::snprintf(row, sizeof(row), "  %-20s %-7s %-12llu %llu\n",
                  section.name.c_str(),
                  kDtypeNames[static_cast<int>(section.dtype)],
                  static_cast<unsigned long long>(section.offset),
                  static_cast<unsigned long long>(section.size));
    out << row;
  }
  return out.str();
}

}  // namespace omnifair
